//! The Sequence Number Cache (paper §4).
//!
//! Stores the per-L2-line sequence numbers needed to rebuild one-time-pad
//! seeds. This module is pure state (hit/miss/evict bookkeeping); the
//! latencies those events cost live in the controller, and the actual
//! pad computation in `padlock-crypto`.

use crate::config::{SncConfig, SncOrganization};
use padlock_cache::{CacheConfig, FullAssocCache, SetAssocCache};
use padlock_stats::CounterSet;

/// Result of a query for a line's sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SncLookup {
    /// Resident; carries the sequence number.
    Hit(u16),
    /// Not resident.
    Miss,
}

/// A sequence number evicted by an LRU install; must be encrypted and
/// spilled to memory (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedSeq {
    /// The covered line's address.
    pub line_addr: u64,
    /// The sequence number being spilled.
    pub seq: u16,
}

#[derive(Debug)]
enum Storage {
    Full(FullAssocCache<u16>),
    SetAssoc(SetAssocCache<u16>),
}

/// Fixed-slot SNC event counters, bumped as plain fields on the hot
/// path and rendered as a [`CounterSet`] on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SncStats {
    query_hits: u64,
    query_misses: u64,
    update_hits: u64,
    update_misses: u64,
    overflows: u64,
    installs: u64,
    spills: u64,
    install_rejects: u64,
}

impl SncStats {
    fn to_counters(self) -> CounterSet {
        // Only touched counters appear, matching the shape the
        // incrementally-built `CounterSet` had before the fixed-slot
        // rewrite (readers use `get`, which defaults absent names to 0).
        let mut set = CounterSet::new("snc");
        for (name, n) in [
            ("query_hits", self.query_hits),
            ("query_misses", self.query_misses),
            ("update_hits", self.update_hits),
            ("update_misses", self.update_misses),
            ("overflows", self.overflows),
            ("installs", self.installs),
            ("spills", self.spills),
            ("install_rejects", self.install_rejects),
        ] {
            if n > 0 {
                set.add(name, n);
            }
        }
        set
    }
}

/// Opaque undo state for one [`SequenceNumberCache::query_undoable`]:
/// the pre-query SNC statistics plus the underlying cache's own recency
/// undo. Apply with [`SequenceNumberCache::undo_query`] before any other
/// mutating SNC call.
#[derive(Debug, Clone, Copy)]
pub struct SncQueryUndo {
    stats: SncStats,
    storage: StorageUndo,
}

#[derive(Debug, Clone, Copy)]
enum StorageUndo {
    Full(padlock_cache::TouchUndo),
    SetAssoc(padlock_cache::ProbeUndo),
}

/// The on-chip Sequence Number Cache.
///
/// # Examples
///
/// ```
/// use padlock_core::{SequenceNumberCache, SncConfig, SncLookup};
///
/// let mut snc = SequenceNumberCache::new(SncConfig::paper_default());
/// assert_eq!(snc.query(0x4000), SncLookup::Miss);
/// snc.install(0x4000, 1);
/// assert_eq!(snc.query(0x4000), SncLookup::Hit(1));
/// assert_eq!(snc.increment(0x4000), Some(2));
/// ```
#[derive(Debug)]
pub struct SequenceNumberCache {
    config: SncConfig,
    storage: Storage,
    stats: SncStats,
}

impl SequenceNumberCache {
    /// Creates an empty SNC.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero entries, or a
    /// set-associative organisation whose set count is not a power of
    /// two).
    pub fn new(config: SncConfig) -> Self {
        let entries = config.entries();
        assert!(entries > 0, "SNC must have at least one entry");
        let storage = match config.organization {
            SncOrganization::FullyAssociative => {
                Storage::Full(FullAssocCache::new("snc", entries))
            }
            SncOrganization::SetAssociative(ways) => {
                // Index the SNC by L2 line address: model it as a cache of
                // `covered_line_bytes`-sized "lines", one entry each.
                let line = config.covered_line_bytes;
                Storage::SetAssoc(SetAssocCache::new(CacheConfig::new(
                    "snc",
                    entries * line,
                    line,
                    ways as usize,
                )))
            }
        };
        Self {
            config,
            storage,
            stats: SncStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SncConfig {
        &self.config
    }

    /// Event counters: `query_hits`, `query_misses`, `update_hits`,
    /// `update_misses`, `installs`, `spills`, `overflows` — a snapshot
    /// rendered from the fixed-slot fields.
    pub fn stats(&self) -> CounterSet {
        self.stats.to_counters()
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = SncStats::default();
        match &mut self.storage {
            Storage::Full(c) => c.reset_stats(),
            Storage::SetAssoc(c) => c.reset_stats(),
        }
    }

    /// Entries currently resident.
    pub fn occupancy(&self) -> usize {
        match &self.storage {
            Storage::Full(c) => c.len(),
            Storage::SetAssoc(c) => c.occupancy(),
        }
    }

    /// Whether a no-replacement install of `line_addr` would succeed
    /// (a free slot exists in the relevant set / anywhere).
    pub fn has_room_for(&self, line_addr: u64) -> bool {
        match &self.storage {
            Storage::Full(c) => !c.is_full(),
            Storage::SetAssoc(c) => {
                // A set has room if an install would not evict. Probe by
                // counting resident lines in the set: reconstruct via
                // contains of... simplest: clone-free check below.
                c.set_occupancy(line_addr) < c.config().ways()
            }
        }
    }

    /// Queries the sequence number for a read miss (refreshes recency).
    pub fn query(&mut self, line_addr: u64) -> SncLookup {
        let found = match &mut self.storage {
            Storage::Full(c) => c.get(line_addr).map(|s| *s),
            Storage::SetAssoc(c) => c.probe_mut(line_addr).map(|s| *s),
        };
        match found {
            Some(seq) => {
                self.stats.query_hits += 1;
                SncLookup::Hit(seq)
            }
            None => {
                self.stats.query_misses += 1;
                SncLookup::Miss
            }
        }
    }

    /// Like [`SequenceNumberCache::query`], but also returns the opaque
    /// state [`SequenceNumberCache::undo_query`] needs to reverse the
    /// query's statistics and recency effects exactly. The controller's
    /// speculative singleton-window issue uses this: the SNC lookup must
    /// happen to produce the speculated latency, but must be rolled back
    /// if the window is later replayed, so the replayed batch sees the
    /// exact pre-speculation recency order.
    pub fn query_undoable(&mut self, line_addr: u64) -> (SncLookup, SncQueryUndo) {
        let stats = self.stats;
        let (found, storage) = match &mut self.storage {
            Storage::Full(c) => {
                let (got, undo) = c.get_undoable(line_addr);
                (got.map(|s| *s), StorageUndo::Full(undo))
            }
            Storage::SetAssoc(c) => {
                let (got, undo) = c.probe_mut_undoable(line_addr);
                (got.map(|s| *s), StorageUndo::SetAssoc(undo))
            }
        };
        let lookup = match found {
            Some(seq) => {
                self.stats.query_hits += 1;
                SncLookup::Hit(seq)
            }
            None => {
                self.stats.query_misses += 1;
                SncLookup::Miss
            }
        };
        (lookup, SncQueryUndo { stats, storage })
    }

    /// Reverses the matching [`SequenceNumberCache::query_undoable`],
    /// restoring statistics and recency. Must be applied before any
    /// other mutating SNC call.
    pub fn undo_query(&mut self, undo: SncQueryUndo) {
        self.stats = undo.stats;
        match (&mut self.storage, undo.storage) {
            (Storage::Full(c), StorageUndo::Full(u)) => c.undo_touch(u),
            (Storage::SetAssoc(c), StorageUndo::SetAssoc(u)) => c.undo_probe(u),
            _ => unreachable!("undo state matches the storage it came from"),
        }
    }

    /// Increments the sequence number on an update (writeback) hit,
    /// returning the new value, or `None` on miss.
    ///
    /// On 16-bit wraparound the counter restarts at 1 and an `overflows`
    /// event is counted; the functional layer re-encrypts the line under
    /// a new epoch when this happens.
    pub fn increment(&mut self, line_addr: u64) -> Option<u16> {
        let new = match &mut self.storage {
            Storage::Full(c) => c.get(line_addr).map(|s| {
                *s = s.wrapping_add(1).max(1);
                *s
            }),
            Storage::SetAssoc(c) => c.probe_mut(line_addr).map(|s| {
                *s = s.wrapping_add(1).max(1);
                *s
            }),
        };
        match new {
            Some(seq) => {
                self.stats.update_hits += 1;
                if seq == 1 {
                    self.stats.overflows += 1;
                }
                Some(seq)
            }
            None => {
                self.stats.update_misses += 1;
                None
            }
        }
    }

    /// Installs a sequence number, evicting LRU state if needed.
    ///
    /// Under LRU the victim (if any) is returned for spilling to memory;
    /// the caller charges encryption + a memory write. Under
    /// no-replacement use [`SequenceNumberCache::try_install`] instead.
    pub fn install(&mut self, line_addr: u64, seq: u16) -> Option<EvictedSeq> {
        self.stats.installs += 1;
        let evicted = match &mut self.storage {
            Storage::Full(c) => c
                .insert(line_addr, seq, true)
                .map(|e| EvictedSeq {
                    line_addr: e.addr,
                    seq: e.payload,
                }),
            Storage::SetAssoc(c) => c.insert(line_addr, seq, true).map(|e| EvictedSeq {
                line_addr: e.addr,
                seq: e.payload,
            }),
        };
        if evicted.is_some() {
            self.stats.spills += 1;
        }
        evicted
    }

    /// No-replacement install: succeeds only when a free slot exists.
    pub fn try_install(&mut self, line_addr: u64, seq: u16) -> bool {
        if !self.has_room_for(line_addr) {
            self.stats.install_rejects += 1;
            return false;
        }
        let evicted = self.install(line_addr, seq);
        debug_assert!(evicted.is_none(), "no-replacement install must not evict");
        true
    }

    /// Whether `line_addr` currently has an entry (no side effects).
    pub fn contains(&self, line_addr: u64) -> bool {
        match &self.storage {
            Storage::Full(c) => c.contains(line_addr),
            Storage::SetAssoc(c) => c.contains(line_addr),
        }
    }

    /// Evicts everything (context switch), returning all entries for
    /// encrypted spill.
    pub fn flush(&mut self) -> Vec<EvictedSeq> {
        match &mut self.storage {
            Storage::Full(c) => c
                .flush()
                .into_iter()
                .map(|e| EvictedSeq {
                    line_addr: e.addr,
                    seq: e.payload,
                })
                .collect(),
            Storage::SetAssoc(c) => c
                .flush()
                .into_iter()
                .map(|e| EvictedSeq {
                    line_addr: e.addr,
                    seq: e.payload,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SncConfig, SncOrganization, SncPolicy};

    fn tiny(policy: SncPolicy) -> SequenceNumberCache {
        SequenceNumberCache::new(
            SncConfig {
                capacity_bytes: 8, // 4 entries
                entry_bytes: 2,
                organization: SncOrganization::FullyAssociative,
                policy,
                covered_line_bytes: 128,
            },
        )
    }

    #[test]
    fn query_miss_then_hit_after_install() {
        let mut snc = tiny(SncPolicy::Lru);
        assert_eq!(snc.query(0x000), SncLookup::Miss);
        snc.install(0x000, 5);
        assert_eq!(snc.query(0x000), SncLookup::Hit(5));
        assert_eq!(snc.stats().get("query_hits"), 1);
        assert_eq!(snc.stats().get("query_misses"), 1);
    }

    #[test]
    fn increment_bumps_and_counts_update_hits() {
        let mut snc = tiny(SncPolicy::Lru);
        snc.install(0x080, 1);
        assert_eq!(snc.increment(0x080), Some(2));
        assert_eq!(snc.increment(0x080), Some(3));
        assert_eq!(snc.increment(0x999), None);
        assert_eq!(snc.stats().get("update_hits"), 2);
        assert_eq!(snc.stats().get("update_misses"), 1);
    }

    #[test]
    fn lru_install_evicts_and_reports_spill() {
        let mut snc = tiny(SncPolicy::Lru);
        for i in 0..4u64 {
            snc.install(i * 128, i as u16 + 1);
        }
        snc.query(0); // refresh line 0
        let victim = snc.install(4 * 128, 9).expect("full SNC must evict");
        assert_eq!(victim.line_addr, 128); // LRU after refresh of 0
        assert_eq!(victim.seq, 2);
        assert_eq!(snc.stats().get("spills"), 1);
    }

    #[test]
    fn no_replacement_rejects_when_full() {
        let mut snc = tiny(SncPolicy::NoReplacement);
        for i in 0..4u64 {
            assert!(snc.try_install(i * 128, 1));
        }
        assert!(!snc.try_install(4 * 128, 1));
        assert_eq!(snc.occupancy(), 4);
        assert_eq!(snc.stats().get("install_rejects"), 1);
        // Resident entries keep working.
        assert_eq!(snc.increment(0), Some(2));
    }

    #[test]
    fn wraparound_counts_overflow_and_skips_zero() {
        let mut snc = tiny(SncPolicy::Lru);
        snc.install(0, u16::MAX);
        assert_eq!(snc.increment(0), Some(1));
        assert_eq!(snc.stats().get("overflows"), 1);
    }

    #[test]
    fn set_associative_organisation_has_conflict_misses() {
        // 4 entries, 2-way => 2 sets; covered lines at stride
        // sets*line = 256 collide in set 0.
        let mut snc = SequenceNumberCache::new(SncConfig {
            capacity_bytes: 8,
            entry_bytes: 2,
            organization: SncOrganization::SetAssociative(2),
            policy: SncPolicy::Lru,
            covered_line_bytes: 128,
        });
        snc.install(0, 1);
        snc.install(256, 2);
        assert!(snc.has_room_for(128), "other set still free");
        assert!(!snc.has_room_for(512), "set 0 is full");
        let victim = snc.install(512, 3).expect("conflict eviction");
        assert_eq!(victim.line_addr, 0);
        // A fully associative SNC of the same size would not have evicted.
        let mut full = tiny(SncPolicy::Lru);
        full.install(0, 1);
        full.install(256, 2);
        assert!(full.install(512, 3).is_none());
    }

    #[test]
    fn flush_returns_all_entries() {
        let mut snc = tiny(SncPolicy::Lru);
        snc.install(0, 1);
        snc.install(128, 2);
        let all = snc.flush();
        assert_eq!(all.len(), 2);
        assert_eq!(snc.occupancy(), 0);
        assert_eq!(snc.query(0), SncLookup::Miss);
    }

    #[test]
    fn contains_has_no_side_effects() {
        let mut snc = tiny(SncPolicy::Lru);
        snc.install(0, 1);
        let hits_before = snc.stats().get("query_hits");
        assert!(snc.contains(0));
        assert!(!snc.contains(128));
        assert_eq!(snc.stats().get("query_hits"), hits_before);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut snc = tiny(SncPolicy::Lru);
        snc.install(0, 7);
        snc.query(0);
        snc.reset_stats();
        assert_eq!(snc.stats().get("query_hits"), 0);
        assert_eq!(snc.query(0), SncLookup::Hit(7));
    }

    #[test]
    fn undo_query_restores_stats_and_recency() {
        let mut snc = tiny(SncPolicy::Lru);
        for i in 0..4u64 {
            snc.install(i * 128, i as u16 + 1);
        }
        // Speculatively touch the LRU entry (line 0), then roll back.
        let (lookup, undo) = snc.query_undoable(0);
        assert_eq!(lookup, SncLookup::Hit(1));
        snc.undo_query(undo);
        assert_eq!(snc.stats().get("query_hits"), 0);
        // A rolled-back miss too (probe misses still tick recency state
        // in the set-associative organisation; stats always move).
        let (lookup, undo) = snc.query_undoable(9 * 128);
        assert_eq!(lookup, SncLookup::Miss);
        snc.undo_query(undo);
        assert_eq!(snc.stats().get("query_misses"), 0);
        // Line 0 stayed LRU: the next install evicts it, not line 128.
        let victim = snc.install(4 * 128, 9).expect("full SNC evicts");
        assert_eq!(victim.line_addr, 0, "speculative touch left no trace");
    }

    #[test]
    fn undo_query_matches_untouched_twin_in_set_assoc() {
        let cfg = SncConfig {
            capacity_bytes: 8,
            entry_bytes: 2,
            organization: SncOrganization::SetAssociative(2),
            policy: SncPolicy::Lru,
            covered_line_bytes: 128,
        };
        let mut probed = SequenceNumberCache::new(cfg);
        let mut twin = SequenceNumberCache::new(cfg);
        for snc in [&mut probed, &mut twin] {
            snc.install(0, 1);
            snc.install(256, 2);
        }
        let (_, undo) = probed.query_undoable(0);
        probed.undo_query(undo);
        // Same conflict install evicts the same victim in both.
        let vp = probed.install(512, 3).expect("conflict eviction");
        let vt = twin.install(512, 3).expect("conflict eviction");
        assert_eq!(vp, vt);
        assert_eq!(probed.stats().get("query_hits"), 0);
    }

    #[test]
    fn paper_sized_snc_handles_many_lines() {
        let mut snc = SequenceNumberCache::new(SncConfig::paper_default());
        for i in 0..40_000u64 {
            snc.install(i * 128, (i % 65_535) as u16 + 1);
        }
        assert_eq!(snc.occupancy(), 32_768);
        // Oldest entries spilled.
        assert!(!snc.contains(0));
        assert!(snc.contains(39_999 * 128));
        assert_eq!(snc.stats().get("spills"), 40_000 - 32_768);
    }
}
