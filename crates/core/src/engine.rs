//! Transaction-engine primitives for the secure memory controller.
//!
//! The controller no longer charges each L2 miss in isolation: reads and
//! writebacks are enqueued as [`MemTxn`] records in a bounded in-flight
//! queue (MSHR-style) and retired by a drain scheduler that reserves
//! time on three resources:
//!
//! * the **DRAM fabric** — the persistent per-channel occupancy of the
//!   [`padlock_mem::ChannelSet`] the seed model already had, plus (when
//!   `mem_banks > 1`) each channel's per-bank open-row state, so
//!   overlapping misses contend for banks and rows, not just the bus;
//! * the **crypto pipeline** — a [`CryptoTimeline`] of issue slots, each
//!   of which can coalesce up to `crypto_pipeline_width` one-time-pad
//!   generations (batched pad precomputation);
//! * the **SNC ports** — one [`SncPorts`] timeline per shard, so
//!   concurrent misses that probe the same shard serialise while misses
//!   to different shards proceed in parallel.
//!
//! Crypto and port timelines are scoped to one drain window: they model
//! contention *between overlapping transactions*, not state that leaks
//! across blocking calls. That is what makes the engine collapse to the
//! paper's single-miss arithmetic when `max_inflight = 1` — a lone
//! transaction never contends, so every `issue`/`acquire` below starts
//! at its natural ready time and the latency algebra is bit-identical
//! to the seed model (enforced by the `engine_vs_seed` differential
//! test).

use padlock_cpu::LineKind;

/// What a queued transaction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// An L2 miss fill; the caller waits for the plaintext-ready cycle.
    Read(LineKind),
    /// A dirty-victim writeback; posted, nobody waits.
    Writeback,
}

/// One in-flight memory transaction (an MSHR entry).
///
/// Created by [`crate::SecureBackend`]'s `line_read` /
/// `line_read_batch` / `line_writeback` entry points and retired by its
/// drain scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTxn {
    /// The L2 line address the transaction concerns.
    pub line_addr: u64,
    /// Read or writeback.
    pub op: TxnOp,
    /// Cycle the request entered the in-flight queue.
    pub arrival: u64,
    /// The requestor (compartment/core index) the transaction belongs
    /// to. Single-core machines leave this at 0; the multi-compartment
    /// server tags each core's traffic so shared-fabric arbitration
    /// across compartments stays attributable.
    pub requestor: u16,
}

impl MemTxn {
    /// A read transaction arriving at `arrival` (requestor 0).
    pub fn read(arrival: u64, line_addr: u64, kind: LineKind) -> Self {
        Self {
            line_addr,
            op: TxnOp::Read(kind),
            arrival,
            requestor: 0,
        }
    }

    /// A writeback transaction arriving at `arrival` (requestor 0).
    pub fn writeback(arrival: u64, line_addr: u64) -> Self {
        Self {
            line_addr,
            op: TxnOp::Writeback,
            arrival,
            requestor: 0,
        }
    }

    /// Tags the transaction with its requestor compartment (builder
    /// style).
    pub fn with_requestor(mut self, requestor: u16) -> Self {
        self.requestor = requestor;
        self
    }
}

/// Issue-slot timeline of the pipelined crypto unit within one drain
/// window.
///
/// The unit is fully pipelined, so a job's end-to-end latency is fixed;
/// what contends is the *issue slot*. Each slot is one cycle wide.
/// One-time-**pad** generations are narrow jobs the batching hardware
/// coalesces up to `width` per slot ([`CryptoTimeline::issue_pad`]);
/// full-line and sequence-number **decrypts** stream a whole line of
/// blocks through the pipeline and claim a slot exclusively
/// ([`CryptoTimeline::issue_block`]).
///
/// # Examples
///
/// ```
/// use padlock_core::engine::CryptoTimeline;
///
/// let mut t = CryptoTimeline::new(50, 2);
/// assert_eq!(t.issue_pad(100), 150); // first pad: natural time
/// assert_eq!(t.issue_pad(100), 150); // coalesced into the same slot
/// assert_eq!(t.issue_pad(100), 151); // slot full: next cycle
/// assert_eq!(t.issue_block(100), 152); // decrypts never coalesce
/// assert_eq!(t.issue_pad(400), 450);  // later ready time: fresh slot
/// ```
#[derive(Debug, Clone)]
pub struct CryptoTimeline {
    latency: u64,
    width: u64,
    slot: Option<(u64, u64)>, // (start cycle, remaining coalesce room)
}

impl CryptoTimeline {
    /// Creates a timeline for a unit with the given pipeline latency
    /// and pads-per-slot width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(latency: u64, width: u64) -> Self {
        assert!(width > 0, "crypto issue width must be positive");
        Self {
            latency,
            width,
            slot: None,
        }
    }

    /// Issues one pad generation ready at `ready`; returns its
    /// completion cycle. Pads coalesce into an open pad slot while it
    /// has room, then slip one cycle.
    pub fn issue_pad(&mut self, ready: u64) -> u64 {
        self.issue_job(ready, true)
    }

    /// Issues one full-line (or sequence-number) decrypt ready at
    /// `ready`; returns its completion cycle. Decrypts occupy their
    /// slot exclusively — only pad generation batches.
    pub fn issue_block(&mut self, ready: u64) -> u64 {
        self.issue_job(ready, false)
    }

    fn issue_job(&mut self, ready: u64, coalesce: bool) -> u64 {
        let start = match self.slot {
            Some((start, room)) if ready <= start && coalesce && room > 0 => {
                self.slot = Some((start, room - 1));
                start
            }
            Some((start, _)) if ready <= start => {
                let next = start + 1;
                self.slot = Some((next, if coalesce { self.width - 1 } else { 0 }));
                next
            }
            _ => {
                self.slot = Some((ready, if coalesce { self.width - 1 } else { 0 }));
                ready
            }
        };
        start + self.latency
    }
}

/// Per-shard SNC lookup-port timelines within one drain window.
///
/// A probe occupies its shard's port for `port_cycles`; the probe
/// *result* is available at the cycle the port was acquired (the paper
/// hides uncontended lookup latency inside the L2 access), so the port
/// only delays a probe that finds its shard busy with another in-flight
/// miss.
#[derive(Debug, Clone)]
pub struct SncPorts {
    free_at: Vec<u64>,
    port_cycles: u64,
}

impl SncPorts {
    /// Creates idle ports for `shards` shards.
    pub fn new(shards: usize, port_cycles: u64) -> Self {
        Self {
            free_at: vec![0; shards.max(1)],
            port_cycles,
        }
    }

    /// Returns every port to idle, keeping the shard geometry — so a
    /// drain window can reuse one allocation instead of building a
    /// fresh `SncPorts` per window.
    pub fn reset(&mut self) {
        self.free_at.fill(0);
    }

    /// Acquires shard `shard`'s port for a probe wanted at `ready`;
    /// returns the cycle the probe actually starts (= its result
    /// cycle).
    pub fn acquire(&mut self, shard: usize, ready: u64) -> u64 {
        let start = ready.max(self.free_at[shard]);
        self.free_at[shard] = start + self.port_cycles;
        start
    }
}

/// The lifecycle of one speculative drain window.
///
/// A backend that speculates issues a lone miss as a singleton window
/// the moment its MSHR entry allocates, keeping a checkpoint `C` of
/// everything the issue mutated. The window then moves through three
/// states:
///
/// * **Closed** — no speculation in flight; the next eligible miss may
///   open a window.
/// * **Open(C)** — one read speculated, checkpoint held. If the window
///   drains in this state, the speculation was right: [`SpecWindow::confirm`]
///   commits it (the issued work simply stands) and returns `true`.
/// * **Poisoned** — a second request landed in the window (shared
///   crypto slots, port contention, FR-FCFS reordering, or a write
///   forward would couple the batch). [`SpecWindow::abort`] hands the
///   checkpoint back so the caller can roll the issue back; the window
///   stays poisoned — declining further speculation — until the drain's
///   `confirm` observes the failure and closes it for replay.
///
/// The state machine is deliberately backend-agnostic: `C` carries
/// whatever the backend must restore (a channel snapshot, a stats
/// copy, an SNC recency undo).
#[derive(Debug, Default)]
pub enum SpecWindow<C> {
    /// No speculation in flight.
    #[default]
    Closed,
    /// One speculated read stands, with the checkpoint to unwind it.
    Open(C),
    /// The window coupled and was rolled back; speculation is declined
    /// until the next drain confirms and closes it.
    Poisoned,
}

impl<C> SpecWindow<C> {
    /// Whether a new speculation may open (no window in flight and no
    /// poison pending).
    pub fn is_closed(&self) -> bool {
        matches!(self, Self::Closed)
    }

    /// Opens the window around a just-issued speculation.
    ///
    /// # Panics
    ///
    /// Panics if the window is not closed — the caller must abort or
    /// confirm first (one speculation per window).
    pub fn open(&mut self, checkpoint: C) {
        assert!(self.is_closed(), "one speculation per window");
        *self = Self::Open(checkpoint);
    }

    /// Poisons an open window, returning its checkpoint so the caller
    /// can roll the speculated issue back. `None` (and no state
    /// change) when the window is closed or already poisoned.
    pub fn abort(&mut self) -> Option<C> {
        if matches!(self, Self::Open(_)) {
            match std::mem::replace(self, Self::Poisoned) {
                Self::Open(checkpoint) => Some(checkpoint),
                _ => unreachable!("just matched Open"),
            }
        } else {
            None
        }
    }

    /// Closes the window at a drain: `true` when it was still open (the
    /// speculation stands — drop the checkpoint and keep the issued
    /// work), `false` when there was nothing to confirm (closed) or the
    /// window was poisoned (caller must replay). Always leaves the
    /// window closed, clearing any poison.
    pub fn confirm(&mut self) -> bool {
        matches!(std::mem::replace(self, Self::Closed), Self::Open(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_window_confirms_an_open_speculation() {
        let mut w: SpecWindow<u32> = SpecWindow::default();
        assert!(w.is_closed());
        assert!(!w.confirm(), "nothing speculated, nothing to confirm");
        w.open(7);
        assert!(!w.is_closed());
        assert!(w.abort().is_some(), "open window yields its checkpoint");
        assert!(w.abort().is_none(), "poisoned window has nothing left");
        assert!(!w.is_closed(), "poison blocks new speculation");
        assert!(!w.confirm(), "poisoned window fails its confirm");
        assert!(w.is_closed(), "confirm clears the poison");
        w.open(9);
        assert!(w.confirm());
        assert!(w.is_closed());
    }

    #[test]
    #[should_panic(expected = "one speculation per window")]
    fn spec_window_rejects_double_open() {
        let mut w: SpecWindow<()> = SpecWindow::default();
        w.open(());
        w.open(());
    }

    #[test]
    fn lone_crypto_job_starts_at_ready_time() {
        let mut t = CryptoTimeline::new(50, 4);
        assert_eq!(t.issue_pad(0), 50);
        let mut t = CryptoTimeline::new(102, 1);
        assert_eq!(t.issue_block(77), 179);
    }

    #[test]
    fn pads_coalesce_up_to_width_then_slip() {
        let mut t = CryptoTimeline::new(50, 4);
        for _ in 0..4 {
            assert_eq!(t.issue_pad(10), 60);
        }
        assert_eq!(t.issue_pad(10), 61);
        assert_eq!(t.issue_pad(10), 61);
    }

    #[test]
    fn block_decrypts_never_coalesce() {
        let mut t = CryptoTimeline::new(50, 4);
        assert_eq!(t.issue_block(10), 60);
        assert_eq!(t.issue_block(10), 61);
        // A pad cannot join a decrypt's slot either.
        assert_eq!(t.issue_pad(10), 62);
        // ...but later pads coalesce among themselves in the new slot.
        assert_eq!(t.issue_pad(10), 62);
    }

    #[test]
    fn later_ready_time_opens_fresh_slot() {
        let mut t = CryptoTimeline::new(50, 1);
        assert_eq!(t.issue_pad(0), 50);
        assert_eq!(t.issue_pad(200), 250);
        // An earlier-ready job after a later slot contends at the slot.
        assert_eq!(t.issue_pad(100), 251);
    }

    #[test]
    fn uncontended_port_probe_is_free() {
        let mut p = SncPorts::new(2, 8);
        assert_eq!(p.acquire(0, 1000), 1000);
        assert_eq!(p.acquire(1, 1000), 1000); // other shard in parallel
        assert_eq!(p.acquire(0, 1000), 1008); // same shard serialises
    }

    #[test]
    fn txn_constructors_record_fields() {
        let r = MemTxn::read(5, 0x4000, LineKind::Data);
        assert_eq!(r.op, TxnOp::Read(LineKind::Data));
        assert_eq!(r.arrival, 5);
        assert_eq!(r.requestor, 0);
        let w = MemTxn::writeback(9, 0x8000).with_requestor(3);
        assert_eq!(w.op, TxnOp::Writeback);
        assert_eq!(w.line_addr, 0x8000);
        assert_eq!(w.requestor, 3);
    }
}
