//! Address-interleaved sharding of the Sequence Number Cache.
//!
//! A multi-controller configuration splits the SNC into `N` shards,
//! each a full [`SequenceNumberCache`] with its own recency state,
//! statistics, and lookup port. Covered lines interleave across shards
//! by line index (`(addr / covered_line_bytes) % N`), so a streaming
//! footprint spreads evenly and per-shard LRU behaves like the slice of
//! a single LRU cache that shard would have held: under a per-shard
//! balanced address stream the sharded SNC is hit/miss-equivalent to
//! one fully associative SNC of the same total capacity (property
//! tested in `snc_shard_properties`).

use crate::config::SncConfig;
use crate::snc::{EvictedSeq, SequenceNumberCache, SncLookup, SncQueryUndo};
use padlock_stats::CounterSet;

/// `N` address-interleaved [`SequenceNumberCache`] shards behind the
/// single-SNC API the controller uses.
///
/// # Examples
///
/// ```
/// use padlock_core::{SncConfig, SncShards};
///
/// let mut snc = SncShards::new(SncConfig::paper_default(), 4);
/// assert_eq!(snc.num_shards(), 4);
/// snc.install(0x4000, 1);
/// assert!(snc.contains(0x4000));
/// // Line index 0x4000/128 = 0x80 -> shard 0.
/// assert_eq!(snc.shard_of(0x4000), 0);
/// assert_eq!(snc.occupancy(), 1);
/// ```
#[derive(Debug)]
pub struct SncShards {
    shards: Vec<SequenceNumberCache>,
    covered_line_bytes: u64,
}

impl SncShards {
    /// Creates `shards` empty shards splitting `config`'s capacity.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or does not evenly divide the entry
    /// count (every shard must hold the same share).
    pub fn new(config: SncConfig, shards: usize) -> Self {
        assert!(shards > 0, "SNC must have at least one shard");
        assert_eq!(
            config.entries() % shards,
            0,
            "shard count {} must divide the {} SNC entries",
            shards,
            config.entries()
        );
        let per_shard = SncConfig {
            capacity_bytes: config.capacity_bytes / shards,
            ..config
        };
        Self {
            shards: (0..shards)
                .map(|_| SequenceNumberCache::new(per_shard))
                .collect(),
            covered_line_bytes: config.covered_line_bytes as u64,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index covering `line_addr` (line-interleaved).
    pub fn shard_of(&self, line_addr: u64) -> usize {
        ((line_addr / self.covered_line_bytes) % self.shards.len() as u64) as usize
    }

    /// The individual shards (diagnostics; per-shard stats).
    pub fn shards(&self) -> &[SequenceNumberCache] {
        &self.shards
    }

    /// Total entries resident across all shards.
    pub fn occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.occupancy()).sum()
    }

    /// Aggregated event counters summed over every shard
    /// (`query_hits`, `spills`, ...).
    pub fn stats(&self) -> CounterSet {
        let mut all = CounterSet::new("snc");
        for shard in &self.shards {
            all.merge(&shard.stats());
        }
        all
    }

    /// Resets every shard's statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
    }

    /// Whether a no-replacement install of `line_addr` would succeed in
    /// its shard.
    pub fn has_room_for(&self, line_addr: u64) -> bool {
        self.shards[self.shard_of(line_addr)].has_room_for(line_addr)
    }

    /// Queries the sequence number for a read miss (refreshes the
    /// owning shard's recency).
    pub fn query(&mut self, line_addr: u64) -> SncLookup {
        let shard = self.shard_of(line_addr);
        self.shards[shard].query(line_addr)
    }

    /// Like [`SncShards::query`], but also returns the owning shard's
    /// undo state so [`SncShards::undo_query`] can reverse the lookup
    /// exactly (see [`SequenceNumberCache::query_undoable`]).
    pub fn query_undoable(&mut self, line_addr: u64) -> (SncLookup, SncQueryUndo) {
        let shard = self.shard_of(line_addr);
        self.shards[shard].query_undoable(line_addr)
    }

    /// Reverses the matching [`SncShards::query_undoable`] on the shard
    /// owning `line_addr`. Must be applied before any other mutating
    /// SNC call.
    pub fn undo_query(&mut self, line_addr: u64, undo: SncQueryUndo) {
        let shard = self.shard_of(line_addr);
        self.shards[shard].undo_query(undo);
    }

    /// Increments the sequence number on an update hit; `None` on miss.
    pub fn increment(&mut self, line_addr: u64) -> Option<u16> {
        let shard = self.shard_of(line_addr);
        self.shards[shard].increment(line_addr)
    }

    /// Installs a sequence number into the owning shard, returning that
    /// shard's LRU victim if it was full.
    pub fn install(&mut self, line_addr: u64, seq: u16) -> Option<EvictedSeq> {
        let shard = self.shard_of(line_addr);
        self.shards[shard].install(line_addr, seq)
    }

    /// No-replacement install: succeeds only when the owning shard has
    /// a free slot.
    pub fn try_install(&mut self, line_addr: u64, seq: u16) -> bool {
        let shard = self.shard_of(line_addr);
        self.shards[shard].try_install(line_addr, seq)
    }

    /// Whether any shard holds `line_addr` (no side effects).
    pub fn contains(&self, line_addr: u64) -> bool {
        self.shards[self.shard_of(line_addr)].contains(line_addr)
    }

    /// Evicts everything from every shard (context switch), returning
    /// all entries for encrypted spill.
    pub fn flush(&mut self) -> Vec<EvictedSeq> {
        self.shards.iter_mut().flat_map(|s| s.flush()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SncOrganization, SncPolicy};

    fn cfg(entries: usize) -> SncConfig {
        SncConfig {
            capacity_bytes: entries * 2,
            entry_bytes: 2,
            organization: SncOrganization::FullyAssociative,
            policy: SncPolicy::Lru,
            covered_line_bytes: 128,
        }
    }

    fn addr(line: u64) -> u64 {
        line * 128
    }

    #[test]
    fn single_shard_behaves_like_plain_snc() {
        let mut sharded = SncShards::new(cfg(4), 1);
        let mut plain = SequenceNumberCache::new(cfg(4));
        for line in [0u64, 3, 1, 0, 7, 3, 9] {
            assert_eq!(sharded.query(addr(line)), plain.query(addr(line)));
            assert_eq!(
                sharded.install(addr(line), line as u16 + 1),
                plain.install(addr(line), line as u16 + 1)
            );
        }
        assert_eq!(sharded.occupancy(), plain.occupancy());
        assert_eq!(
            sharded.stats().get("query_hits"),
            plain.stats().get("query_hits")
        );
    }

    #[test]
    fn addresses_interleave_by_line_index() {
        let snc = SncShards::new(cfg(8), 4);
        assert_eq!(snc.shard_of(addr(0)), 0);
        assert_eq!(snc.shard_of(addr(1)), 1);
        assert_eq!(snc.shard_of(addr(5)), 1);
        assert_eq!(snc.shard_of(addr(7)), 3);
    }

    #[test]
    fn evictions_stay_within_the_owning_shard() {
        // 4 entries over 2 shards: 2 per shard. Three even-line installs
        // must evict an even line even though shard 1 is empty.
        let mut snc = SncShards::new(cfg(4), 2);
        snc.install(addr(0), 1);
        snc.install(addr(2), 2);
        let victim = snc.install(addr(4), 3).expect("shard 0 full");
        assert_eq!(victim.line_addr, addr(0));
        assert_eq!(snc.shards()[1].occupancy(), 0);
    }

    #[test]
    fn no_replacement_is_rejected_per_shard() {
        let mut snc = SncShards::new(
            SncConfig {
                policy: SncPolicy::NoReplacement,
                ..cfg(4)
            },
            2,
        );
        assert!(snc.try_install(addr(0), 1));
        assert!(snc.try_install(addr(2), 1));
        assert!(!snc.has_room_for(addr(4)));
        assert!(!snc.try_install(addr(4), 1), "shard 0 is full");
        assert!(snc.try_install(addr(1), 1), "shard 1 still has room");
    }

    #[test]
    fn flush_and_stats_aggregate_over_shards() {
        let mut snc = SncShards::new(cfg(8), 4);
        for line in 0..6u64 {
            snc.install(addr(line), 1);
        }
        snc.query(addr(0));
        snc.query(addr(1));
        assert_eq!(snc.stats().get("query_hits"), 2);
        assert_eq!(snc.stats().get("installs"), 6);
        let all = snc.flush();
        assert_eq!(all.len(), 6);
        assert_eq!(snc.occupancy(), 0);
        snc.reset_stats();
        assert_eq!(snc.stats().get("installs"), 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn ragged_shard_split_panics() {
        let _ = SncShards::new(cfg(10), 4);
    }
}
