//! The secure *server*: `N` core pipelines — each with its private
//! L1/L2 hierarchy and MSHR file — time-multiplexed over **one** shared
//! [`SecureBackend`] (crypto unit, SNC, DRAM channel fabric).
//!
//! The paper evaluates a single protected core, but its §4.3 context-
//! switch machinery (SNC flush policy 1, interrupt-time register
//! encryption) only becomes measurable when several compartments
//! actually contend for the one SNC and the one channel fabric. This
//! module provides that harness:
//!
//! * each core is a **compartment**: its address stream lives in a
//!   private stripe selected by the top address bits
//!   ([`COMPARTMENT_ADDR_BITS`]), its transactions are tagged with its
//!   requestor id ([`crate::MemTxn::requestor`]), and its register
//!   file is protected by a per-compartment XOM key
//!   ([`crate::compartment::CompartmentManager`]);
//! * the scheduler steps the unfinished core with the smallest local
//!   clock (ties to the lowest index), so per-core drain windows
//!   interleave through the shared controller in deterministic global-
//!   time order and FR-FCFS arbitration across compartments is
//!   observable;
//! * an optional round-robin context-switch quantum
//!   ([`ServerConfig::switch_interval`]) fires
//!   [`SecureBackend::context_switch_flush`] at every global
//!   `t = k * interval`, encrypting the outgoing compartment's
//!   registers into an interrupt frame and resuming the incoming one;
//! * per-compartment fairness counters fall out of delta snapshots of
//!   the shared fabric's [`padlock_mem::TrafficTotals`], taken exactly
//!   when ownership changes — so the per-compartment splits reassemble
//!   to the shared totals *by construction* (the `server_properties`
//!   proptests pin this).
//!
//! With `cores = 1` and no switch interval the scheduler degenerates to
//! the single-core [`crate::Machine`] protocol step for step; the
//! `server_vs_seed` differential test holds the two bit-identical.

use crate::compartment::{CompartmentManager, InterruptFrame, XomId};
use crate::controller::SecureBackend;
use crate::machine::MachineConfig;
use padlock_cpu::{Core, Hierarchy, LineKind, MemoryBackend, RunSession, RunStats, Workload};
use padlock_mem::TrafficTotals;
use padlock_stats::CounterSet;

/// Bits below the compartment index in a physical line address: a
/// compartment's stripe is `index << COMPARTMENT_ADDR_BITS`, leaving
/// every single-program address space (all well under 2^40) in
/// compartment 0's stripe.
pub const COMPARTMENT_ADDR_BITS: u32 = 40;

/// The compartment that owns `line_addr` — the stripe index encoded in
/// the address bits above [`COMPARTMENT_ADDR_BITS`].
pub fn compartment_of(line_addr: u64) -> usize {
    (line_addr >> COMPARTMENT_ADDR_BITS) as usize
}

/// The base address of compartment `index`'s stripe.
pub fn compartment_base(index: usize) -> u64 {
    (index as u64) << COMPARTMENT_ADDR_BITS
}

/// Configuration of a secure server: one machine template shared by
/// every core, the core count, and the context-switch quantum.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The per-core pipeline/hierarchy and the *shared* backend
    /// parameters. Every core gets a private copy of the pipeline and
    /// hierarchy; the security config builds the one shared backend.
    pub machine: MachineConfig,
    /// Number of core pipelines (compartments) sharing the backend.
    pub cores: usize,
    /// Global cycles between round-robin context switches; `None`
    /// disables switching (no SNC flushes, no register encryption).
    pub switch_interval: Option<u64>,
}

impl ServerConfig {
    /// The paper's machine replicated over `cores` compartments, with
    /// context switching off.
    pub fn paper(mode: crate::SecurityMode, cores: usize) -> Self {
        Self {
            machine: MachineConfig::paper(mode),
            cores,
            switch_interval: None,
        }
    }

    /// Builder: wrap an arbitrary machine template.
    pub fn from_machine(machine: MachineConfig, cores: usize) -> Self {
        Self {
            machine,
            cores,
            switch_interval: None,
        }
    }

    /// Builder: set the context-switch quantum in global cycles.
    pub fn with_switch_interval(mut self, interval: u64) -> Self {
        self.switch_interval = Some(interval);
        self
    }

    /// Builder: set the number of cores.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// The server's report label: the machine label plus ` x{N}core`
    /// when more than one core shares the fabric and ` sw{K}` when a
    /// context-switch quantum is active.
    pub fn label(&self) -> String {
        let mut label = self.machine.label();
        if self.cores > 1 {
            label.push_str(&format!(" x{}core", self.cores));
        }
        if let Some(interval) = self.switch_interval {
            label.push_str(&format!(" sw{interval}"));
        }
        label
    }
}

/// The per-core seat for the shared backend: holds the one
/// [`SecureBackend`] only while its core is the scheduled owner, and
/// delegates the whole [`MemoryBackend`] surface to it.
///
/// A core is only ever stepped with the backend installed in its slot,
/// so the `expect`s below encode the scheduler invariant, not a
/// recoverable condition.
#[derive(Debug, Default)]
pub struct ServerSlot(Option<SecureBackend>);

impl ServerSlot {
    /// An empty seat (the scheduler has not installed the backend).
    pub fn empty() -> Self {
        Self(None)
    }

    /// Installs the shared backend into this seat.
    ///
    /// # Panics
    ///
    /// Panics if the seat is already occupied — the backend would be
    /// duplicated.
    pub fn put(&mut self, backend: SecureBackend) {
        assert!(self.0.is_none(), "the shared backend is already seated");
        self.0 = Some(backend);
    }

    /// Removes the shared backend from this seat.
    ///
    /// # Panics
    ///
    /// Panics if the seat is empty.
    pub fn take(&mut self) -> SecureBackend {
        self.0.take().expect("the shared backend is seated here")
    }

    /// The seated backend.
    ///
    /// # Panics
    ///
    /// Panics if the seat is empty.
    pub fn get(&self) -> &SecureBackend {
        self.0
            .as_ref()
            .expect("the scheduler seats the backend before this core runs")
    }

    /// The seated backend, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the seat is empty.
    pub fn get_mut(&mut self) -> &mut SecureBackend {
        self.0
            .as_mut()
            .expect("the scheduler seats the backend before this core runs")
    }
}

impl MemoryBackend for ServerSlot {
    fn line_read(&mut self, now: u64, line_addr: u64, kind: LineKind) -> u64 {
        self.get_mut().line_read(now, line_addr, kind)
    }

    fn line_read_batch(&mut self, now: u64, reqs: &[(u64, LineKind)]) -> Vec<u64> {
        self.get_mut().line_read_batch(now, reqs)
    }

    fn line_read_batch_at(&mut self, reqs: &[(u64, u64, LineKind)]) -> Vec<u64> {
        self.get_mut().line_read_batch_at(reqs)
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        self.get_mut().line_writeback(now, line_addr);
    }

    fn eager_issue_safe(&self) -> bool {
        self.get().eager_issue_safe()
    }

    fn speculative_issue_at(&mut self, arrival: u64, line_addr: u64, kind: LineKind) -> Option<u64> {
        self.get_mut().speculative_issue_at(arrival, line_addr, kind)
    }

    fn speculative_confirm(&mut self) -> bool {
        self.get_mut().speculative_confirm()
    }

    fn is_idle(&self, now: u64) -> bool {
        self.get().is_idle(now)
    }

    fn drain(&mut self, now: u64) {
        self.get_mut().drain(now);
    }

    fn traffic(&self) -> CounterSet {
        self.get().traffic()
    }

    fn reset_stats(&mut self) {
        self.get_mut().reset_stats();
    }

    fn label(&self) -> String {
        self.get().label()
    }
}

/// One compartment's share of a server measurement window.
#[derive(Debug, Clone)]
pub struct CompartmentReport {
    /// The compartment's core statistics (cycles, instructions, ...).
    pub stats: RunStats,
    /// Its private L2's counters.
    pub l2: CounterSet,
    /// Its private MSHR file's counters.
    pub mshr: CounterSet,
    /// The shared fabric's traffic generated *while this compartment
    /// owned the backend* — demand and sequence-number transactions,
    /// bytes, and row hit/conflict counts. The per-compartment values
    /// sum exactly to the shared fabric's totals.
    pub traffic: TrafficTotals,
    /// SNC entries this compartment owned that were evicted (installed
    /// over, or context-switch flushed) while *another* compartment was
    /// the active requestor — the fairness cost the shared SNC imposes
    /// on it.
    pub snc_evictions_by_others: u64,
}

impl CompartmentReport {
    /// Cycles per committed instruction over the window.
    pub fn cpi(&self) -> f64 {
        if self.stats.instructions == 0 {
            0.0
        } else {
            self.stats.cycles as f64 / self.stats.instructions as f64
        }
    }
}

/// Everything measured over one server window: per-compartment reports
/// plus the shared fabric's aggregate counters.
#[derive(Debug, Clone)]
pub struct ServerMeasurement {
    /// Server label (e.g. `"SNC-LRU 64KB fully-assoc x4core sw20000"`).
    pub label: String,
    /// One report per compartment, in core order.
    pub compartments: Vec<CompartmentReport>,
    /// Aggregate memory traffic of the shared fabric (per
    /// [`padlock_mem::TrafficClass`]).
    pub traffic: CounterSet,
    /// Aggregate controller event counters.
    pub controller: CounterSet,
    /// Aggregate SNC event counters (empty in non-OTP modes).
    pub snc: CounterSet,
    /// Aggregate channel totals (the quantity the per-compartment
    /// [`CompartmentReport::traffic`] splits partition).
    pub totals: TrafficTotals,
    /// Context switches fired inside the measurement window.
    pub context_switches: u64,
}

/// `N` cores time-multiplexed over one shared [`SecureBackend`].
///
/// # Examples
///
/// ```
/// use padlock_core::{SecureServer, ServerConfig, SecurityMode};
/// use padlock_core::server::compartment_base;
/// use padlock_cpu::{OffsetWorkload, StrideWorkload};
///
/// let mut server = SecureServer::new(ServerConfig::paper(SecurityMode::otp_lru_64k(), 2));
/// let mut loads: Vec<_> = (0..2)
///     .map(|c| OffsetWorkload::new(StrideWorkload::new(1 << 20, 128, 0.2), compartment_base(c)))
///     .collect();
/// let meas = server.run(&mut loads, 500, 2_000);
/// assert_eq!(meas.compartments.len(), 2);
/// ```
#[derive(Debug)]
pub struct SecureServer {
    config: ServerConfig,
    cores: Vec<Core<ServerSlot>>,
    /// The shared backend when no core holds it (before the first step).
    parked: Option<SecureBackend>,
    /// Which core's slot currently seats the backend.
    holder: Option<usize>,
    /// The compartment the *next* traffic delta is attributed to.
    attr_owner: Option<usize>,
    /// Per-compartment shares of the fabric totals.
    per_comp: Vec<TrafficTotals>,
    /// Fabric totals at the last attribution snapshot.
    last_totals: TrafficTotals,
    compartments: CompartmentManager,
    /// Encrypted register frames of preempted compartments.
    frames: Vec<Option<InterruptFrame>>,
    /// Global cycle of the next scheduled context switch.
    next_switch: u64,
    /// Lifetime switch count (drives the round-robin; never reset).
    switch_seq: u64,
    /// Switches fired inside the current measurement window.
    context_switches: u64,
}

impl SecureServer {
    /// Builds the server: `cores` private pipelines and hierarchies
    /// over one shared backend, each core registered as compartment
    /// `XomId(index + 1)` with a derived key, compartment 0 entered.
    ///
    /// # Panics
    ///
    /// Panics when `cores == 0`, and when speculative completions are
    /// enabled with more than one core or a switch quantum: a rolled-
    /// back speculative window rewinds the shared channel statistics,
    /// which would corrupt the per-compartment delta attribution (the
    /// single-core no-switch case never snapshots mid-run, so it keeps
    /// speculation).
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.cores >= 1, "a server needs at least one core");
        if config.cores > 1 || config.switch_interval.is_some() {
            assert!(
                !config.machine.hierarchy.speculative_completions,
                "speculative completions roll shared channel statistics back; \
                 per-compartment attribution requires them off when traffic \
                 ownership can change mid-run"
            );
        }
        let cores: Vec<_> = (0..config.cores)
            .map(|_| {
                let hierarchy =
                    Hierarchy::new(config.machine.hierarchy.clone(), ServerSlot::empty());
                Core::with_hierarchy(config.machine.pipeline.clone(), hierarchy)
            })
            .collect();
        let mut compartments = CompartmentManager::new();
        for c in 0..config.cores {
            compartments.register_compartment(XomId(c as u16 + 1), Self::compartment_key(c));
        }
        compartments
            .enter(XomId(1))
            .expect("compartment 1 was just registered");
        let next_switch = config.switch_interval.unwrap_or(u64::MAX);
        let per_comp = vec![TrafficTotals::default(); config.cores];
        let frames = (0..config.cores).map(|_| None).collect();
        let parked = Some(SecureBackend::new(config.machine.security.clone()));
        Self {
            config,
            cores,
            parked,
            holder: None,
            attr_owner: None,
            per_comp,
            last_totals: TrafficTotals::default(),
            compartments,
            frames,
            next_switch,
            switch_seq: 0,
            context_switches: 0,
        }
    }

    /// A deterministic per-compartment XOM key (stand-in for the
    /// vendor-wrapped `Ks` the loader would install).
    fn compartment_key(index: usize) -> [u8; 16] {
        let mut key = [0u8; 16];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = (index as u8)
                .wrapping_mul(0x3D)
                .wrapping_add(i as u8)
                .wrapping_add(0x5A);
        }
        key
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared backend, wherever it is currently seated.
    pub fn backend(&self) -> &SecureBackend {
        match self.holder {
            Some(c) => self.cores[c].hierarchy().backend().get(),
            None => self
                .parked
                .as_ref()
                .expect("the shared backend is parked when no core holds it"),
        }
    }

    fn backend_mut(&mut self) -> &mut SecureBackend {
        match self.holder {
            Some(c) => self.cores[c].hierarchy_mut().backend_mut().get_mut(),
            None => self
                .parked
                .as_mut()
                .expect("the shared backend is parked when no core holds it"),
        }
    }

    /// The compartment register-file manager (for attack scenarios and
    /// tests).
    pub fn compartments(&self) -> &CompartmentManager {
        &self.compartments
    }

    /// Pre-ages the shared backend's written-line sets (see
    /// [`SecureBackend::pre_age`]). Addresses must already carry their
    /// compartment's stripe offset ([`compartment_base`]); feeds for
    /// several compartments can be chained into one call.
    pub fn pre_age(
        &mut self,
        ancient: impl IntoIterator<Item = u64>,
        active: impl IntoIterator<Item = u64>,
    ) {
        self.backend_mut().pre_age(ancient, active);
    }

    /// Attributes the fabric traffic since the last snapshot to the
    /// current attribution owner and re-snapshots.
    fn capture_owner_delta(&mut self) {
        let totals = self.backend().channels().totals();
        if let Some(owner) = self.attr_owner {
            self.per_comp[owner] = self.per_comp[owner].plus(totals.minus(self.last_totals));
        }
        self.last_totals = totals;
    }

    /// Makes core `c` the owner: captures the previous owner's traffic
    /// delta, moves the backend into `c`'s slot, and tags subsequent
    /// transactions with `c`.
    fn install(&mut self, c: usize) {
        if self.attr_owner != Some(c) {
            self.capture_owner_delta();
            self.attr_owner = Some(c);
        }
        if self.holder != Some(c) {
            let backend = match self.holder {
                Some(prev) => self.cores[prev].hierarchy_mut().backend_mut().take(),
                None => self
                    .parked
                    .take()
                    .expect("the shared backend is parked when no core holds it"),
            };
            self.cores[c].hierarchy_mut().backend_mut().put(backend);
            self.holder = Some(c);
        }
        self.backend_mut().set_active_requestor(c as u16);
    }

    /// Fires the context switch scheduled at global cycle `at`: flushes
    /// the SNC with the incoming compartment as the active requestor
    /// (so every other compartment's flushed entries count as evictions
    /// by others), attributes the flush traffic to the incoming
    /// compartment, and performs the §2.3/§4.3 register-file dance —
    /// interrupt the outgoing compartment into an encrypted frame,
    /// resume (or first-enter) the incoming one.
    fn fire_switch(&mut self, at: u64) {
        self.capture_owner_delta();
        let incoming = ((self.switch_seq + 1) as usize) % self.config.cores;
        {
            let backend = self.backend_mut();
            backend.set_active_requestor(incoming as u16);
            backend.context_switch_flush(at);
        }
        self.attr_owner = Some(incoming);
        self.capture_owner_delta();
        let frame = self
            .compartments
            .interrupt()
            .expect("the active compartment is always registered");
        let outgoing = usize::from(frame.owner().0 - 1);
        self.frames[outgoing] = Some(frame);
        match self.frames[incoming].take() {
            Some(frame) => self
                .compartments
                .resume(&frame)
                .expect("a frame stored by the scheduler is fresh"),
            None => self
                .compartments
                .enter(XomId(incoming as u16 + 1))
                .expect("every compartment was registered at construction"),
        }
        self.switch_seq += 1;
        self.context_switches += 1;
    }

    /// Runs every core for `n_ops` committed ops under the min-clock
    /// lockstep: the unfinished core with the smallest local `now`
    /// steps next (ties to the lowest index), with due context switches
    /// fired first. Returns per-core run statistics.
    fn run_phase<W: Workload>(&mut self, workloads: &mut [W], n_ops: u64) -> Vec<RunStats> {
        let n = self.config.cores;
        let mut sessions: Vec<RunSession> =
            self.cores.iter_mut().map(|c| c.begin_run(n_ops)).collect();
        let mut running = vec![true; n];
        let mut left = n;
        while left > 0 {
            let c = (0..n)
                .filter(|&i| running[i])
                .min_by_key(|&i| self.cores[i].now())
                .expect("left > 0 implies an unfinished core");
            if let Some(interval) = self.config.switch_interval {
                while self.cores[c].now() >= self.next_switch {
                    let at = self.next_switch;
                    self.fire_switch(at);
                    self.next_switch += interval;
                }
            }
            self.install(c);
            if !self.cores[c].step_run(&mut sessions[c], &mut workloads[c]) {
                running[c] = false;
                left -= 1;
            }
        }
        // Finishing a session drains the core's still-parked misses, so
        // the shared backend must be seated (and the traffic attributed)
        // under each finishing compartment in turn.
        let mut stats = Vec::with_capacity(n);
        for (c, session) in sessions.into_iter().enumerate() {
            self.install(c);
            stats.push(self.cores[c].finish_run(session));
        }
        stats
    }

    /// Warm every compartment up for `warmup_ops` committed ops, reset
    /// all statistics, measure a window of `measure_ops` per
    /// compartment, and report. `workloads[c]` drives core `c` and
    /// should confine its addresses to compartment `c`'s stripe
    /// (offset them by [`compartment_base`]).
    ///
    /// # Panics
    ///
    /// Panics when `workloads.len() != cores`.
    pub fn run<W: Workload>(
        &mut self,
        workloads: &mut [W],
        warmup_ops: u64,
        measure_ops: u64,
    ) -> ServerMeasurement {
        assert_eq!(
            workloads.len(),
            self.config.cores,
            "one workload per core"
        );
        if warmup_ops > 0 {
            self.run_phase(workloads, warmup_ops);
        }
        for c in 0..self.config.cores {
            self.install(c);
            self.cores[c].reset_stats();
            // The backend's channel statistics just went back to zero;
            // re-anchor the attribution snapshot so the next delta is
            // computed against the reset state, not the warmup totals.
            self.last_totals = TrafficTotals::default();
        }
        self.per_comp = vec![TrafficTotals::default(); self.config.cores];
        self.context_switches = 0;
        let stats = self.run_phase(workloads, measure_ops);
        // Measurement wrap-up, as in `Machine::run`: retire queued
        // transactions and flush residual spill/write buffers so
        // traffic counters are exact; the tail is attributed to the
        // last owner.
        let end = self.cores.iter().map(Core::now).max().unwrap_or(0);
        self.backend_mut().drain(end);
        self.capture_owner_delta();
        let mut compartments = Vec::with_capacity(self.config.cores);
        for (c, stats) in stats.into_iter().enumerate() {
            let h = self.cores[c].hierarchy();
            compartments.push(CompartmentReport {
                stats,
                l2: h.l2_stats().clone(),
                mshr: h.mshr_stats().clone(),
                traffic: self.per_comp[c],
                snc_evictions_by_others: self
                    .backend()
                    .snc_evicted_by_others()
                    .get(c)
                    .copied()
                    .unwrap_or(0),
            });
        }
        let backend = self.backend();
        ServerMeasurement {
            label: self.config.label(),
            compartments,
            traffic: backend.traffic(),
            controller: backend.controller_stats(),
            snc: backend
                .snc()
                .map(|s| s.stats())
                .unwrap_or_else(|| CounterSet::new("snc")),
            totals: backend.channels().totals(),
            context_switches: self.context_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecurityMode;
    use padlock_cpu::{OffsetWorkload, StrideWorkload};

    fn striped_loads(cores: usize, span: u64) -> Vec<OffsetWorkload<StrideWorkload>> {
        (0..cores)
            .map(|c| OffsetWorkload::new(StrideWorkload::new(span, 128, 0.3), compartment_base(c)))
            .collect()
    }

    #[test]
    fn compartment_stripe_round_trips() {
        assert_eq!(compartment_of(compartment_base(3) + 0x7000_0000), 3);
        assert_eq!(compartment_of(0x7000_0000), 0);
    }

    #[test]
    fn server_runs_every_compartment_to_completion() {
        let mut server =
            SecureServer::new(ServerConfig::paper(SecurityMode::otp_lru_64k(), 3));
        let mut loads = striped_loads(3, 4 << 20);
        let meas = server.run(&mut loads, 1_000, 4_000);
        assert_eq!(meas.compartments.len(), 3);
        for report in &meas.compartments {
            assert_eq!(report.stats.instructions, 4_000);
            assert!(report.stats.cycles > 0);
        }
        assert_eq!(meas.context_switches, 0);
    }

    #[test]
    fn compartment_traffic_partitions_the_fabric_totals() {
        let mut server =
            SecureServer::new(ServerConfig::paper(SecurityMode::otp_lru_64k(), 2));
        let mut loads = striped_loads(2, 8 << 20);
        let meas = server.run(&mut loads, 1_000, 6_000);
        let sum = meas
            .compartments
            .iter()
            .fold(TrafficTotals::default(), |acc, r| acc.plus(r.traffic));
        assert_eq!(sum, meas.totals);
        assert!(meas.totals.transactions() > 0);
    }

    #[test]
    fn switch_quantum_fires_flushes_and_counts_switches() {
        let config = ServerConfig::paper(SecurityMode::otp_lru_64k(), 2)
            .with_switch_interval(10_000);
        let mut server = SecureServer::new(config);
        let mut loads = striped_loads(2, 8 << 20);
        let meas = server.run(&mut loads, 2_000, 8_000);
        assert!(meas.context_switches > 0, "quantum never fired");
        assert!(
            meas.controller.get("context_flush_entries") > 0,
            "switches must flush the SNC: {}",
            meas.controller
        );
        assert!(meas.label.ends_with("x2core sw10000"), "{}", meas.label);
    }

    #[test]
    fn cross_compartment_snc_evictions_are_attributed() {
        // Two compartments with very different install rates through a
        // tiny shared SNC: the store-heavy one's installs sweep the
        // quiet one's entries out (symmetric streams would evict only
        // their own, since LRU degenerates to FIFO under perfect
        // alternation).
        let snc = crate::SncConfig::paper_default().with_capacity(64);
        let config = ServerConfig::paper(SecurityMode::Otp { snc }, 2);
        let mut server = SecureServer::new(config);
        let mut loads: Vec<_> = [0.9, 0.1]
            .into_iter()
            .enumerate()
            .map(|(c, frac)| {
                OffsetWorkload::new(StrideWorkload::new(8 << 20, 128, frac), compartment_base(c))
            })
            .collect();
        let meas = server.run(&mut loads, 2_000, 24_000);
        let crossed: u64 = meas
            .compartments
            .iter()
            .map(|r| r.snc_evictions_by_others)
            .sum();
        assert!(
            crossed > 0,
            "no cross-compartment evictions observed; snc: {} controller: {} traffic: {}",
            meas.snc,
            meas.controller,
            meas.traffic
        );
    }

    #[test]
    #[should_panic(expected = "speculative completions")]
    fn multi_core_rejects_speculative_completions() {
        let mut config = ServerConfig::paper(SecurityMode::otp_lru_64k(), 2);
        config.machine.hierarchy.speculative_completions = true;
        let _ = SecureServer::new(config);
    }
}
