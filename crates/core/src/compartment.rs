//! Compartments: XOM IDs, tagged registers, and interrupt-time register
//! protection (paper §2.3 and §4.3).
//!
//! Each active task runs in a *compartment* identified by a XOM ID; data
//! written to registers is tagged with the owner's ID, and a different
//! compartment (including the OS, ID 0) reading it is a violation. On an
//! interrupt the register file is encrypted under the compartment key
//! with a *mutating counter* so a malicious OS can neither read register
//! values nor replay a stale frame — the same mutation argument that
//! motivates the paper's per-line sequence numbers.

use padlock_crypto::{CbcMac, CipherKind, OneTimePad};
use std::collections::BTreeMap;
use std::fmt;

/// Per-compartment encryption and authentication engines, derived from
/// one compartment key.
type CompartmentCrypto = (
    OneTimePad<Box<dyn padlock_crypto::BlockCipher>>,
    CbcMac<Box<dyn padlock_crypto::BlockCipher>>,
);

/// A compartment identifier; `XomId(0)` is the untrusted/shared domain
/// (the OS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XomId(pub u16);

impl XomId {
    /// The null/shared compartment (the OS).
    pub const NULL: XomId = XomId(0);
}

impl fmt::Display for XomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xom:{}", self.0)
    }
}

/// Errors raised by compartment operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompartmentError {
    /// A register owned by one compartment was read from another.
    RegisterViolation {
        /// Register index.
        reg: usize,
        /// Owner of the value.
        owner: XomId,
        /// Compartment that attempted the read.
        reader: XomId,
    },
    /// An interrupt frame failed authentication on resume.
    FrameRejected,
    /// An interrupt frame was replayed (stale counter).
    FrameReplayed {
        /// Counter in the frame.
        frame_counter: u64,
        /// Counter the processor expected.
        expected: u64,
    },
    /// The compartment is not registered.
    UnknownCompartment(XomId),
}

impl fmt::Display for CompartmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompartmentError::RegisterViolation { reg, owner, reader } => {
                write!(f, "register r{reg} owned by {owner} read by {reader}")
            }
            CompartmentError::FrameRejected => write!(f, "interrupt frame failed its MAC"),
            CompartmentError::FrameReplayed {
                frame_counter,
                expected,
            } => write!(
                f,
                "interrupt frame replay: counter {frame_counter}, expected {expected}"
            ),
            CompartmentError::UnknownCompartment(id) => write!(f, "unknown compartment {id}"),
        }
    }
}

impl std::error::Error for CompartmentError {}

/// The number of architectural registers in the tagged file.
pub const NUM_REGS: usize = 32;

/// An encrypted register-file snapshot produced on an interrupt.
///
/// The OS holds this opaque blob; only the owning compartment's key and
/// the processor's expected counter can restore it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterruptFrame {
    owner: XomId,
    counter: u64,
    ciphertext: Vec<u8>,
    tag: [u8; 8],
}

impl InterruptFrame {
    /// The compartment the frame belongs to.
    pub fn owner(&self) -> XomId {
        self.owner
    }

    /// The mutation counter baked into the frame.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Adversary entry point: tamper with the ciphertext.
    pub fn attack_tamper(&mut self, byte: usize) {
        let idx = byte % self.ciphertext.len();
        self.ciphertext[idx] ^= 1;
    }
}

/// A register value tagged with its owning compartment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct TaggedWord {
    value: u64,
    owner: Option<XomId>,
}

/// The compartment manager: tagged register file, per-compartment keys,
/// and interrupt save/restore.
///
/// # Examples
///
/// ```
/// use padlock_core::compartment::{CompartmentManager, XomId};
///
/// let mut cm = CompartmentManager::new();
/// cm.register_compartment(XomId(1), [7u8; 16]);
/// cm.enter(XomId(1)).unwrap();
/// cm.write_reg(3, 42);
/// assert_eq!(cm.read_reg(3).unwrap(), 42);
/// // The OS cannot read the tagged register:
/// cm.enter(XomId::NULL).unwrap();
/// assert!(cm.read_reg(3).is_err());
/// ```
#[derive(Debug)]
pub struct CompartmentManager {
    regs: [TaggedWord; NUM_REGS],
    active: XomId,
    keys: BTreeMap<XomId, [u8; 16]>,
    /// Monotonic interrupt counter: the "mutating value" of §3.4.
    interrupt_counter: u64,
    /// Per-compartment expected counter for replay rejection.
    expected_counter: BTreeMap<XomId, u64>,
}

impl Default for CompartmentManager {
    fn default() -> Self {
        Self::new()
    }
}

impl CompartmentManager {
    /// Creates a manager with an empty register file, active in the
    /// null compartment.
    pub fn new() -> Self {
        Self {
            regs: [TaggedWord::default(); NUM_REGS],
            active: XomId::NULL,
            keys: BTreeMap::new(),
            interrupt_counter: 0,
            expected_counter: BTreeMap::new(),
        }
    }

    /// Registers a compartment and its symmetric key (derived from the
    /// program's `Ks` at load time).
    pub fn register_compartment(&mut self, id: XomId, key: [u8; 16]) {
        self.keys.insert(id, key);
    }

    /// The active compartment.
    pub fn active(&self) -> XomId {
        self.active
    }

    /// Enters a compartment (the `enter_xom` instruction).
    ///
    /// # Errors
    ///
    /// Returns [`CompartmentError::UnknownCompartment`] for unregistered
    /// non-null IDs.
    pub fn enter(&mut self, id: XomId) -> Result<(), CompartmentError> {
        if id != XomId::NULL && !self.keys.contains_key(&id) {
            return Err(CompartmentError::UnknownCompartment(id));
        }
        self.active = id;
        Ok(())
    }

    /// Writes a register, tagging it with the active compartment.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= NUM_REGS`.
    pub fn write_reg(&mut self, reg: usize, value: u64) {
        self.regs[reg] = TaggedWord {
            value,
            owner: Some(self.active),
        };
    }

    /// Reads a register; fails when the tag belongs to another
    /// compartment.
    ///
    /// # Errors
    ///
    /// Returns [`CompartmentError::RegisterViolation`] on cross-
    /// compartment reads.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= NUM_REGS`.
    pub fn read_reg(&self, reg: usize) -> Result<u64, CompartmentError> {
        let w = &self.regs[reg];
        match w.owner {
            None => Ok(w.value),
            Some(owner) if owner == self.active => Ok(w.value),
            Some(owner) => Err(CompartmentError::RegisterViolation {
                reg,
                owner,
                reader: self.active,
            }),
        }
    }

    fn crypto_for(&self, id: XomId) -> Result<CompartmentCrypto, CompartmentError> {
        let key = self
            .keys
            .get(&id)
            .ok_or(CompartmentError::UnknownCompartment(id))?;
        let otp = OneTimePad::new(CipherKind::Aes128.instantiate(key));
        let mut mac_key = *key;
        for b in &mut mac_key {
            *b ^= 0xA5;
        }
        let mac = CbcMac::new(CipherKind::Aes128.instantiate(&mac_key));
        Ok((otp, mac))
    }

    /// Handles an interrupt: encrypts the active compartment's registers
    /// under a fresh counter, scrubs the register file, and switches to
    /// the null compartment. Returns the opaque frame the OS will hold.
    ///
    /// # Errors
    ///
    /// Returns [`CompartmentError::UnknownCompartment`] if the active
    /// compartment has no key (the null compartment cannot be
    /// interrupted into a frame).
    pub fn interrupt(&mut self) -> Result<InterruptFrame, CompartmentError> {
        let owner = self.active;
        let (otp, mac) = self.crypto_for(owner)?;
        self.interrupt_counter += 1;
        let counter = self.interrupt_counter;
        let mut plain = Vec::with_capacity(NUM_REGS * 8);
        for w in &self.regs {
            plain.extend_from_slice(&w.value.to_le_bytes());
        }
        // Seed = mutating counter: a fresh pad per interrupt event.
        let ciphertext = otp.encrypt(counter.wrapping_mul(0x1_0001), &plain);
        let tag = mac.tag(counter, &ciphertext);
        self.expected_counter.insert(owner, counter);
        // Scrub and hand control to the OS.
        self.regs = [TaggedWord::default(); NUM_REGS];
        self.active = XomId::NULL;
        Ok(InterruptFrame {
            owner,
            counter,
            ciphertext,
            tag,
        })
    }

    /// Resumes a compartment from an interrupt frame, verifying
    /// authenticity and freshness.
    ///
    /// # Errors
    ///
    /// Returns [`CompartmentError::FrameRejected`] on MAC failure and
    /// [`CompartmentError::FrameReplayed`] when the counter is stale.
    pub fn resume(&mut self, frame: &InterruptFrame) -> Result<(), CompartmentError> {
        let (otp, mac) = self.crypto_for(frame.owner)?;
        if !mac.verify(frame.counter, &frame.ciphertext, &frame.tag) {
            return Err(CompartmentError::FrameRejected);
        }
        let expected = self
            .expected_counter
            .get(&frame.owner)
            .copied()
            .unwrap_or(0);
        if frame.counter != expected {
            return Err(CompartmentError::FrameReplayed {
                frame_counter: frame.counter,
                expected,
            });
        }
        let plain = otp.decrypt(frame.counter.wrapping_mul(0x1_0001), &frame.ciphertext);
        for (i, chunk) in plain.chunks_exact(8).enumerate() {
            self.regs[i] = TaggedWord {
                value: u64::from_le_bytes(chunk.try_into().expect("8 bytes")),
                owner: Some(frame.owner),
            };
        }
        self.active = frame.owner;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> CompartmentManager {
        let mut cm = CompartmentManager::new();
        cm.register_compartment(XomId(1), [1u8; 16]);
        cm.register_compartment(XomId(2), [2u8; 16]);
        cm
    }

    #[test]
    fn registers_are_tagged_per_compartment() {
        let mut cm = manager();
        cm.enter(XomId(1)).unwrap();
        cm.write_reg(5, 1234);
        assert_eq!(cm.read_reg(5).unwrap(), 1234);
        cm.enter(XomId(2)).unwrap();
        let err = cm.read_reg(5).unwrap_err();
        assert_eq!(
            err,
            CompartmentError::RegisterViolation {
                reg: 5,
                owner: XomId(1),
                reader: XomId(2)
            }
        );
    }

    #[test]
    fn untagged_registers_are_shared() {
        let cm = manager();
        assert_eq!(cm.read_reg(0).unwrap(), 0);
    }

    #[test]
    fn unknown_compartment_cannot_be_entered() {
        let mut cm = manager();
        assert_eq!(
            cm.enter(XomId(9)).unwrap_err(),
            CompartmentError::UnknownCompartment(XomId(9))
        );
    }

    #[test]
    fn interrupt_scrubs_registers_and_switches_to_os() {
        let mut cm = manager();
        cm.enter(XomId(1)).unwrap();
        cm.write_reg(3, 777);
        let frame = cm.interrupt().unwrap();
        assert_eq!(cm.active(), XomId::NULL);
        assert_eq!(cm.read_reg(3).unwrap(), 0, "registers scrubbed");
        assert_eq!(frame.owner(), XomId(1));
        // The OS sees only ciphertext; 777 is not legible in the frame.
        assert!(!frame
            .ciphertext
            .windows(8)
            .any(|w| w == 777u64.to_le_bytes()));
    }

    #[test]
    fn resume_restores_register_values() {
        let mut cm = manager();
        cm.enter(XomId(1)).unwrap();
        cm.write_reg(3, 777);
        cm.write_reg(7, u64::MAX);
        let frame = cm.interrupt().unwrap();
        cm.resume(&frame).unwrap();
        assert_eq!(cm.active(), XomId(1));
        assert_eq!(cm.read_reg(3).unwrap(), 777);
        assert_eq!(cm.read_reg(7).unwrap(), u64::MAX);
    }

    #[test]
    fn tampered_frame_is_rejected() {
        let mut cm = manager();
        cm.enter(XomId(1)).unwrap();
        cm.write_reg(0, 1);
        let mut frame = cm.interrupt().unwrap();
        frame.attack_tamper(4);
        assert_eq!(cm.resume(&frame).unwrap_err(), CompartmentError::FrameRejected);
    }

    #[test]
    fn replayed_frame_is_rejected() {
        let mut cm = manager();
        cm.enter(XomId(1)).unwrap();
        cm.write_reg(0, 10);
        let stale = cm.interrupt().unwrap();
        cm.resume(&stale).unwrap();
        // Second interrupt produces a fresh frame; replaying the stale
        // one must fail.
        let fresh = cm.interrupt().unwrap();
        let err = cm.resume(&stale).unwrap_err();
        assert!(matches!(err, CompartmentError::FrameReplayed { .. }));
        cm.resume(&fresh).unwrap();
        assert_eq!(cm.read_reg(0).unwrap(), 10);
    }

    #[test]
    fn two_interrupts_produce_different_ciphertexts_for_same_registers() {
        // The "mutating value" property: identical register contents
        // encrypt differently on each interrupt.
        let mut cm = manager();
        cm.enter(XomId(1)).unwrap();
        cm.write_reg(0, 42);
        let f1 = cm.interrupt().unwrap();
        cm.resume(&f1).unwrap();
        let f2 = cm.interrupt().unwrap();
        assert_ne!(f1.ciphertext, f2.ciphertext);
        assert_ne!(f1.counter(), f2.counter());
    }

    #[test]
    fn interrupt_from_null_compartment_fails() {
        let mut cm = manager();
        assert!(matches!(
            cm.interrupt().unwrap_err(),
            CompartmentError::UnknownCompartment(XomId::NULL)
        ));
    }
}
