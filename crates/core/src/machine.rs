//! A fully configured machine: core + hierarchy + secure backend,
//! with the warm-up-then-measure protocol the paper uses.

use crate::config::{SecureBackendConfig, SecurityMode};
use crate::controller::SecureBackend;
use padlock_cpu::{Core, Hierarchy, HierarchyConfig, MemoryBackend, PipelineConfig, RunStats, Workload};
use padlock_stats::CounterSet;

/// Configuration of a whole simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Pipeline widths and structures.
    pub pipeline: PipelineConfig,
    /// Cache geometry.
    pub hierarchy: HierarchyConfig,
    /// Security mode and memory parameters.
    pub security: SecureBackendConfig,
}

impl MachineConfig {
    /// The paper's machine in the given security mode.
    pub fn paper(mode: SecurityMode) -> Self {
        Self {
            pipeline: PipelineConfig::paper_default(),
            hierarchy: HierarchyConfig::paper_default(),
            security: SecureBackendConfig::paper(mode),
        }
    }

    /// The Fig. 8 variant: XOM with the equal-area 384KB 6-way L2.
    pub fn paper_xom_big_l2() -> Self {
        Self {
            pipeline: PipelineConfig::paper_default(),
            hierarchy: HierarchyConfig::paper_big_l2(),
            security: SecureBackendConfig::paper(SecurityMode::Xom),
        }
    }

    /// The machine's report label: the backend's security/fabric label
    /// ([`SecureBackendConfig::label`]) plus an ` x{n}mshr` suffix when
    /// the L2 MSHR file holds more than the paper's single entry — so
    /// two machines differing only in MSHR depth never collide in a
    /// report table.
    pub fn label(&self) -> String {
        let mut label = self.security.label();
        if self.hierarchy.l2_mshrs > 1 {
            label.push_str(&format!(" x{}mshr", self.hierarchy.l2_mshrs));
        }
        label
    }
}

/// Everything measured over one window.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Core statistics (cycles, instructions, IPC, branches...).
    pub stats: RunStats,
    /// L2 statistics snapshot.
    pub l2: CounterSet,
    /// Memory traffic snapshot (per [`padlock_mem::TrafficClass`]).
    pub traffic: CounterSet,
    /// Controller event snapshot.
    pub controller: CounterSet,
    /// L2 MSHR file snapshot (`allocations`, `merges`, `full_drains`,
    /// `forced_drains`, `idle_drains`).
    pub mshr: CounterSet,
    /// SNC event snapshot (empty counters in non-OTP modes).
    pub snc: CounterSet,
    /// Machine label (e.g. `"XOM"`).
    pub label: String,
}

impl Measurement {
    /// The paper's Fig. 9 metric: SNC-induced transactions as a
    /// percentage of demand line transactions.
    pub fn snc_traffic_percent(&self) -> f64 {
        let line = self.traffic.get("line_reads") + self.traffic.get("line_writes");
        let seq = self.traffic.get("seq_reads") + self.traffic.get("seq_writes");
        if line == 0 {
            0.0
        } else {
            seq as f64 / line as f64 * 100.0
        }
    }
}

/// A ready-to-run machine.
///
/// # Examples
///
/// ```
/// use padlock_core::{Machine, MachineConfig, SecurityMode};
/// use padlock_cpu::StrideWorkload;
///
/// let mut m = Machine::new(MachineConfig::paper(SecurityMode::Insecure));
/// let meas = m.run(&mut StrideWorkload::new(1 << 20, 128, 0.2), 1_000, 4_000);
/// assert_eq!(meas.stats.instructions, 4_000);
/// ```
#[derive(Debug)]
pub struct Machine {
    core: Core<SecureBackend>,
    label: String,
}

impl Machine {
    /// Builds the machine.
    pub fn new(config: MachineConfig) -> Self {
        let label = config.label();
        let backend = SecureBackend::new(config.security);
        let hierarchy = Hierarchy::new(config.hierarchy, backend);
        let core = Core::with_hierarchy(config.pipeline, hierarchy);
        Self { core, label }
    }

    /// Direct access to the core (advanced use).
    pub fn core_mut(&mut self) -> &mut Core<SecureBackend> {
        &mut self.core
    }

    /// Warm up for `warmup_ops` committed ops, reset statistics, then
    /// measure a window of `measure_ops`; returns the measurement.
    pub fn run<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        warmup_ops: u64,
        measure_ops: u64,
    ) -> Measurement {
        if warmup_ops > 0 {
            self.core.run(workload, warmup_ops);
        }
        self.core.reset_stats();
        let stats = self.core.run(workload, measure_ops);
        // Measurement wrap-up: retire queued transactions and flush the
        // residual (< one pack) spill buffer so SeqWrite traffic is not
        // undercounted at window end.
        let now = self.core.now();
        self.core.hierarchy_mut().backend_mut().drain(now);
        let h = self.core.hierarchy();
        Measurement {
            stats,
            l2: h.l2_stats().clone(),
            traffic: h.backend().traffic(),
            controller: h.backend().controller_stats().clone(),
            mshr: h.mshr_stats().clone(),
            snc: h
                .backend()
                .snc()
                .map(|s| s.stats())
                .unwrap_or_else(|| CounterSet::new("snc")),
            label: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padlock_cpu::StrideWorkload;

    fn measure(mode: SecurityMode, ws: u64) -> Measurement {
        let mut m = Machine::new(MachineConfig::paper(mode));
        m.run(&mut StrideWorkload::new(ws, 128, 0.3), 3_000, 12_000)
    }

    #[test]
    fn xom_is_slower_than_baseline_on_memory_bound_work() {
        let base = measure(SecurityMode::Insecure, 32 << 20);
        let xom = measure(SecurityMode::Xom, 32 << 20);
        assert!(
            xom.stats.cycles as f64 > base.stats.cycles as f64 * 1.05,
            "xom {} vs base {}",
            xom.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn otp_recovers_most_of_the_xom_loss() {
        let base = measure(SecurityMode::Insecure, 32 << 20);
        let xom = measure(SecurityMode::Xom, 32 << 20);
        let otp = measure(SecurityMode::otp_lru_64k(), 32 << 20);
        assert!(otp.stats.cycles < xom.stats.cycles);
        let otp_over = otp.stats.cycles as f64 / base.stats.cycles as f64;
        assert!(otp_over < 1.10, "otp overhead ratio {otp_over}");
    }

    #[test]
    fn cache_resident_work_sees_no_security_cost() {
        let base = measure(SecurityMode::Insecure, 8 << 10);
        let xom = measure(SecurityMode::Xom, 8 << 10);
        let ratio = xom.stats.cycles as f64 / base.stats.cycles as f64;
        assert!(ratio < 1.02, "ratio {ratio}");
    }

    #[test]
    fn measurement_exposes_traffic_and_snc_counters() {
        let otp = measure(SecurityMode::otp_lru_64k(), 32 << 20);
        assert!(otp.traffic.get("line_reads") > 0);
        assert!(otp.label.contains("SNC"));
        // The streaming store workload writes back lines; the SNC sees
        // updates.
        assert!(
            otp.snc.get("update_hits") + otp.controller.get("first_writebacks") > 0,
            "snc: {} controller: {}",
            otp.snc,
            otp.controller
        );
    }

    #[test]
    fn snc_traffic_percent_is_small_for_covered_working_sets() {
        // 2MB written working set fits under the 4MB SNC coverage.
        let otp = measure(SecurityMode::otp_lru_64k(), 2 << 20);
        assert!(otp.snc_traffic_percent() < 5.0, "{}", otp.snc_traffic_percent());
    }

    #[test]
    fn measurement_wrapup_flushes_residual_spills() {
        use crate::config::{SncConfig, SncOrganization, SncPolicy};
        // A tiny SNC under a large written working set leaves a partial
        // spill pack at window end; wrap-up must drain it into SeqWrite
        // traffic instead of losing it.
        let snc = SncConfig {
            capacity_bytes: 32, // 16 entries
            entry_bytes: 2,
            organization: SncOrganization::FullyAssociative,
            policy: SncPolicy::Lru,
            covered_line_bytes: 128,
        };
        let mut m = Machine::new(MachineConfig::paper(SecurityMode::Otp { snc }));
        let meas = m.run(&mut StrideWorkload::new(8 << 20, 128, 0.5), 2_000, 12_000);
        assert_eq!(m.core_mut().hierarchy().backend().pending_spills(), 0);
        assert!(
            meas.traffic.get("seq_writes") >= 1,
            "traffic: {}",
            meas.traffic
        );
    }

    #[test]
    fn big_l2_machine_builds_and_runs() {
        let mut m = Machine::new(MachineConfig::paper_xom_big_l2());
        let meas = m.run(&mut StrideWorkload::new(1 << 20, 128, 0.2), 500, 2_000);
        assert_eq!(meas.stats.instructions, 2_000);
        assert_eq!(meas.label, "XOM");
    }
}
