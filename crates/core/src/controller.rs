//! The secure memory controller: everything below L2.
//!
//! Implements the paper's three machines behind one
//! [`padlock_cpu::MemoryBackend`]:
//!
//! * **baseline** — raw DRAM;
//! * **XOM** — every off-chip line transfer passes through the crypto
//!   unit *in series*: read-miss latency = `mem + crypto` (Fig. 2);
//! * **OTP + SNC** — pads are computed in parallel with the DRAM access:
//!   read-miss latency = `max(mem, crypto) + 1` when the seed is at hand,
//!   which it is for instructions (address-seeded, §3.4.1), for clean
//!   data lines (sequence number known to be zero; DESIGN.md §3), and on
//!   SNC query hits. The miss cases follow Algorithm 1: under LRU the
//!   sequence number is fetched from memory and decrypted (`mem + crypto`)
//!   *before* pad generation can start; under no-replacement the line was
//!   direct-encrypted, i.e. the XOM path.
//!
//! Writebacks are enqueued in the write buffer with their ciphertext
//! ready-time and drain on idle channel slots; sequence-number fetches
//! and spills are tagged so Fig. 9's induced-traffic ratio falls out of
//! the traffic counters.

use crate::config::{SecureBackendConfig, SecurityMode, SncPolicy};
use crate::snc::{SequenceNumberCache, SncLookup};
use padlock_cpu::{LineKind, MemoryBackend, MemoryChannel};
use padlock_mem::TrafficClass;
use padlock_stats::CounterSet;
use std::collections::HashSet;

/// The configurable secure memory controller.
///
/// # Examples
///
/// ```
/// use padlock_core::{SecureBackend, SecureBackendConfig, SecurityMode};
/// use padlock_cpu::{LineKind, MemoryBackend};
///
/// let mut xom = SecureBackend::new(SecureBackendConfig::paper(SecurityMode::Xom));
/// // XOM pays memory + crypto in series:
/// assert_eq!(xom.line_read(0, 0x4000, LineKind::Data), 150);
///
/// let mut otp = SecureBackend::new(
///     SecureBackendConfig::paper(SecurityMode::otp_lru_64k()));
/// // OTP overlaps them: max(100, 50) + 1.
/// assert_eq!(otp.line_read(0, 0x4000, LineKind::Data), 101);
/// ```
#[derive(Debug)]
pub struct SecureBackend {
    config: SecureBackendConfig,
    channel: MemoryChannel,
    snc: Option<SequenceNumberCache>,
    /// Lines that have ever been written back (their in-memory copy is
    /// OTP-dynamic or, under a full no-replacement SNC, direct-encrypted).
    written: HashSet<u64>,
    /// Evicted sequence numbers awaiting spill; 64 two-byte entries pack
    /// into one line-sized memory transaction.
    pending_spills: u32,
    stats: CounterSet,
}

/// Sequence-number entries packed per spill transaction (128B line /
/// 2B entry).
const SPILL_BATCH: u32 = 64;

impl SecureBackend {
    /// Creates a controller for the given configuration.
    pub fn new(config: SecureBackendConfig) -> Self {
        let channel = MemoryChannel::new(
            config.mem_latency,
            config.mem_occupancy,
            config.write_buffer_entries,
        );
        let snc = match config.mode {
            SecurityMode::Otp { snc } => Some(SequenceNumberCache::new(snc)),
            _ => None,
        };
        Self {
            config,
            channel,
            snc,
            written: HashSet::new(),
            pending_spills: 0,
            stats: CounterSet::new("controller"),
        }
    }

    /// Models the paper's 10-billion-instruction fast-forward for a
    /// long-running process: marks lines as previously written back and
    /// installs sequence numbers into the SNC (capacity permitting)
    /// without generating memory traffic.
    ///
    /// Two feeds, reflecting two kinds of old state:
    ///
    /// * `ancient` — long-dead allocations. Installed *first*: a
    ///   no-replacement SNC ends up full of them (the paper's gcc
    ///   observation that early sequence numbers hog every slot), while
    ///   LRU will evict them as live data arrives.
    /// * `active` — data the program still rewrites in place (streaming
    ///   update regions). Installed *last* so LRU retains it; under
    ///   no-replacement it takes whatever room the ancient feed left.
    pub fn pre_age<A, B>(&mut self, ancient: A, active: B)
    where
        A: IntoIterator<Item = u64>,
        B: IntoIterator<Item = u64>,
    {
        match self.config.mode {
            SecurityMode::Otp { snc: snc_cfg } => {
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                // Under no-replacement the *active* region was written
                // first in program order (it predates the churn), so it
                // claims slots first; the ancient churn then fills the
                // rest. Under LRU recency is what matters: ancient
                // first, active last.
                let feeds: [Box<dyn Iterator<Item = u64>>; 2] = match snc_cfg.policy {
                    SncPolicy::NoReplacement => [
                        Box::new(active.into_iter()),
                        Box::new(ancient.into_iter()),
                    ],
                    SncPolicy::Lru => [
                        Box::new(ancient.into_iter()),
                        Box::new(active.into_iter()),
                    ],
                };
                for feed in feeds {
                    for line in feed {
                        self.written.insert(line);
                        match snc_cfg.policy {
                            SncPolicy::NoReplacement => {
                                snc.try_install(line, 1);
                            }
                            SncPolicy::Lru => {
                                snc.install(line, 1);
                            }
                        }
                    }
                }
                snc.reset_stats();
            }
            _ => {
                // Aging only affects modes with per-line state.
            }
        }
        self.stats.reset();
    }

    /// Buffers one evicted sequence number; every [`SPILL_BATCH`]th
    /// entry issues a packed line-sized spill transaction.
    fn spill_seq(&mut self, now: u64, ready_at: u64, line_addr: u64) {
        self.pending_spills += 1;
        if self.pending_spills >= SPILL_BATCH {
            self.pending_spills = 0;
            self.channel.enqueue_write(
                now,
                ready_at,
                line_addr,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SecureBackendConfig {
        &self.config
    }

    /// The SNC, when the mode has one.
    pub fn snc(&self) -> Option<&SequenceNumberCache> {
        self.snc.as_ref()
    }

    /// Controller event counters (`otp_fast_reads`, `xom_reads`,
    /// `snc_fetch_reads`, ...).
    pub fn controller_stats(&self) -> &CounterSet {
        &self.stats
    }

    /// Crypto pipeline latency for one line (the paper charges the
    /// pipelined unit's end-to-end latency per line).
    fn crypto_latency(&self) -> u64 {
        self.config.crypto.pipeline_latency()
    }

    /// Flushes the SNC as on a context switch (§4.3, policy 1): every
    /// entry is encrypted (crypto latency each, pipelined) and spilled to
    /// memory. Returns the number of entries flushed.
    pub fn context_switch_flush(&mut self, now: u64) -> usize {
        let Some(snc) = self.snc.as_mut() else {
            return 0;
        };
        let entries = snc.flush();
        let ready = now + self.crypto_latency();
        for e in &entries {
            self.channel
                .enqueue_write(now, ready, e.line_addr, TrafficClass::SeqWrite, 8);
        }
        self.stats.add("context_flush_entries", entries.len() as u64);
        entries.len()
    }

    /// The XOM read path: fetch then decrypt, in series.
    fn xom_read(&mut self, now: u64) -> u64 {
        self.stats.incr("xom_reads");
        let fetched = self
            .channel
            .demand_read(now, TrafficClass::LineRead, self.config.line_bytes);
        fetched + self.crypto_latency()
    }

    /// The OTP fast path: pad generation overlapped with the fetch.
    fn otp_read(&mut self, now: u64) -> u64 {
        self.stats.incr("otp_fast_reads");
        let fetched = self
            .channel
            .demand_read(now, TrafficClass::LineRead, self.config.line_bytes);
        let pad_ready = now + self.crypto_latency();
        fetched.max(pad_ready) + 1
    }
}

impl MemoryBackend for SecureBackend {
    fn line_read(&mut self, now: u64, line_addr: u64, kind: LineKind) -> u64 {
        match self.config.mode {
            SecurityMode::Insecure => {
                self.channel
                    .demand_read(now, TrafficClass::LineRead, self.config.line_bytes)
            }
            SecurityMode::Xom => self.xom_read(now),
            SecurityMode::Otp { snc: snc_cfg } => {
                // Instructions are only ever read: their seed is the
                // virtual address, always at hand (§3.4.1).
                if kind == LineKind::Instruction {
                    return self.otp_read(now);
                }
                // Clean data lines (never written back) still carry the
                // loader's address-seeded encryption: seed known.
                if self.config.clean_lines_bypass && !self.written.contains(&line_addr) {
                    self.stats.incr("clean_bypass_reads");
                    return self.otp_read(now);
                }
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                match snc.query(line_addr) {
                    SncLookup::Hit(_) => self.otp_read(now),
                    SncLookup::Miss => match snc_cfg.policy {
                        // The line was encrypted directly when it was
                        // written while the SNC was full: XOM path.
                        SncPolicy::NoReplacement => self.xom_read(now),
                        // Algorithm 1: fetch the sequence number (memory
                        // + decrypt), then overlap pad generation with
                        // the line fetch.
                        SncPolicy::Lru => {
                            self.stats.incr("snc_fetch_reads");
                            let seq_fetched = self.channel.demand_read(
                                now,
                                TrafficClass::SeqRead,
                                self.config.line_bytes,
                            );
                            let seq_ready = seq_fetched + self.crypto_latency();
                            let line_fetched = self.channel.demand_read(
                                seq_ready,
                                TrafficClass::LineRead,
                                self.config.line_bytes,
                            );
                            let pad_ready = seq_ready + self.crypto_latency();
                            // Install the fetched number; spill the victim.
                            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                            if let Some(victim) = snc.install(line_addr, 1) {
                                let spill_ready = seq_ready + self.crypto_latency();
                                self.spill_seq(now, spill_ready, victim.line_addr);
                            }
                            line_fetched.max(pad_ready) + 1
                        }
                    },
                }
            }
        }
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        let bytes = self.config.line_bytes;
        match self.config.mode {
            SecurityMode::Insecure => {
                self.channel
                    .enqueue_write(now, now, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Xom => {
                // Encrypt in the write buffer, then drain.
                let ready = now + self.crypto_latency();
                self.channel
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Otp { snc: snc_cfg } => {
                let first_writeback = self.written.insert(line_addr);
                let crypto = self.crypto_latency();
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let ready = if snc.increment(line_addr).is_some() {
                    // Update hit: new seed, pad generation, XOR.
                    now + crypto
                } else {
                    match snc_cfg.policy {
                        SncPolicy::NoReplacement => {
                            if snc.try_install(line_addr, 1) {
                                now + crypto
                            } else {
                                // SNC full: direct (XOM-style) encryption
                                // for this line, now and forever.
                                self.stats.incr("norepl_direct_writes");
                                now + crypto
                            }
                        }
                        SncPolicy::Lru => {
                            let mut ready = now + crypto;
                            if first_writeback {
                                // Lazily-allocated sequence number: known
                                // zero, no fetch needed (DESIGN.md §3).
                                self.stats.incr("first_writebacks");
                            } else {
                                // Update miss, Algorithm 1 lines 13-25:
                                // fetch + decrypt the old number first.
                                self.stats.incr("snc_fetch_updates");
                                let seq_fetched = self.channel.demand_read(
                                    now,
                                    TrafficClass::SeqRead,
                                    bytes,
                                );
                                ready = seq_fetched + crypto + crypto;
                            }
                            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                            if let Some(victim) = snc.install(line_addr, 1) {
                                let spill_ready = now + crypto;
                                self.spill_seq(now, spill_ready, victim.line_addr);
                            }
                            ready
                        }
                    }
                };
                self.channel
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
        }
    }

    fn traffic(&self) -> &CounterSet {
        self.channel.mem().stats()
    }

    fn reset_stats(&mut self) {
        self.channel.reset_stats();
        self.stats.reset();
        if let Some(snc) = self.snc.as_mut() {
            snc.reset_stats();
        }
    }

    fn label(&self) -> String {
        self.config.mode.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SncConfig, SncOrganization};

    fn otp_cfg(policy: SncPolicy, entries: usize) -> SecureBackendConfig {
        let mut cfg = SecureBackendConfig::paper(SecurityMode::Otp {
            snc: SncConfig {
                capacity_bytes: entries * 2,
                entry_bytes: 2,
                organization: SncOrganization::FullyAssociative,
                policy,
                covered_line_bytes: 128,
            },
        });
        cfg.mem_occupancy = 0; // isolate latency arithmetic from contention
        cfg
    }

    fn plain_cfg(mode: SecurityMode) -> SecureBackendConfig {
        let mut cfg = SecureBackendConfig::paper(mode);
        cfg.mem_occupancy = 0;
        cfg
    }

    #[test]
    fn baseline_read_is_pure_memory_latency() {
        let mut b = SecureBackend::new(plain_cfg(SecurityMode::Insecure));
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 100);
    }

    #[test]
    fn xom_read_serialises_crypto() {
        let mut b = SecureBackend::new(plain_cfg(SecurityMode::Xom));
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 150);
        assert_eq!(b.line_read(0, 0x4080, LineKind::Instruction), 150);
    }

    #[test]
    fn xom_slow_crypto_costs_202() {
        let mut b = SecureBackend::new(plain_cfg(SecurityMode::Xom).with_slow_crypto());
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 202);
    }

    #[test]
    fn otp_instruction_read_is_max_plus_one() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        assert_eq!(b.line_read(0, 0x4000, LineKind::Instruction), 101);
    }

    #[test]
    fn otp_slow_crypto_still_overlaps() {
        // Fig. 10's point: with a 102-cycle unit, OTP costs
        // max(100, 102) + 1 = 103, not 202.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024).with_slow_crypto());
        assert_eq!(b.line_read(0, 0x4000, LineKind::Instruction), 103);
    }

    #[test]
    fn otp_clean_data_bypasses_snc() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        assert_eq!(b.line_read(0, 0x8000, LineKind::Data), 101);
        assert_eq!(b.controller_stats().get("clean_bypass_reads"), 1);
        assert_eq!(b.snc().unwrap().stats().get("query_misses"), 0);
    }

    #[test]
    fn otp_written_line_hits_snc_and_stays_fast() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        b.line_writeback(0, 0x8000);
        assert_eq!(b.line_read(1000, 0x8000, LineKind::Data), 1101);
        assert_eq!(b.snc().unwrap().stats().get("query_hits"), 1);
    }

    #[test]
    fn otp_lru_query_miss_pays_sequence_fetch() {
        // 1-entry SNC: writing a second line evicts the first's number.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        b.line_writeback(0, 0x8000);
        b.line_writeback(10, 0x9000); // evicts 0x8000's entry
        // Read of 0x8000: seq fetch (100) + decrypt (50), then the line
        // fetch (100) overlapping pad generation (50), + 1.
        let done = b.line_read(1000, 0x8000, LineKind::Data);
        assert_eq!(done, 1000 + 100 + 50 + 100 + 1);
        assert_eq!(b.controller_stats().get("snc_fetch_reads"), 1);
        assert!(b.traffic().get("seq_reads") >= 1);
    }

    #[test]
    fn otp_norepl_full_snc_degrades_to_xom_for_those_lines() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::NoReplacement, 1));
        b.line_writeback(0, 0x8000); // takes the only slot
        b.line_writeback(10, 0x9000); // SNC full -> direct encryption
        assert_eq!(b.controller_stats().get("norepl_direct_writes"), 1);
        // Re-read of the covered line: fast path.
        assert_eq!(b.line_read(1000, 0x8000, LineKind::Data), 1101);
        // Re-read of the uncovered line: XOM path.
        assert_eq!(b.line_read(2000, 0x9000, LineKind::Data), 2150);
    }

    #[test]
    fn otp_first_writeback_skips_sequence_fetch() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        b.line_writeback(0, 0x8000);
        assert_eq!(b.controller_stats().get("first_writebacks"), 1);
        assert_eq!(b.traffic().get("seq_reads"), 0);
    }

    #[test]
    fn otp_update_miss_after_eviction_fetches_sequence() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        b.line_writeback(0, 0x8000);
        b.line_writeback(10, 0x9000); // evicts 0x8000
        b.line_writeback(20, 0x8000); // update miss: fetch required
        assert_eq!(b.controller_stats().get("snc_fetch_updates"), 1);
        assert_eq!(b.traffic().get("seq_reads"), 1);
    }

    #[test]
    fn spilled_sequence_numbers_batch_into_line_transactions() {
        // Spills pack SPILL_BATCH (64) two-byte entries per memory
        // transaction; 65 evictions produce exactly one spill write.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        for i in 0..=65u64 {
            b.line_writeback(i, 0x8000 + i * 128);
        }
        assert_eq!(b.traffic().get("seq_writes"), 1);
        assert_eq!(b.snc().unwrap().stats().get("spills"), 65);
    }

    #[test]
    fn writebacks_become_line_write_traffic() {
        for mode in [SecurityMode::Insecure, SecurityMode::Xom] {
            let mut b = SecureBackend::new(plain_cfg(mode));
            b.line_writeback(0, 0x8000);
            // Force a drain by issuing a demand read far in the future.
            b.line_read(10_000, 0x9000, LineKind::Data);
            assert_eq!(b.traffic().get("line_writes"), 1, "mode {mode}");
        }
    }

    #[test]
    fn context_switch_flush_spills_every_entry() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 16));
        for i in 0..5u64 {
            b.line_writeback(0, 0x8000 + i * 128);
        }
        let flushed = b.context_switch_flush(100);
        assert_eq!(flushed, 5);
        assert_eq!(b.snc().unwrap().occupancy(), 0);
        // Entries became seq-write traffic once drained.
        b.line_read(100_000, 0x100, LineKind::Data);
        assert!(b.traffic().get("seq_writes") >= 5);
    }

    #[test]
    fn reset_stats_clears_everything_but_state() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 16));
        b.line_writeback(0, 0x8000);
        b.line_read(100, 0x8000, LineKind::Data);
        b.reset_stats();
        assert_eq!(b.traffic().get("line_reads"), 0);
        assert_eq!(b.controller_stats().get("otp_fast_reads"), 0);
        // The written-set and SNC contents survive.
        assert_eq!(b.line_read(1000, 0x8000, LineKind::Data), 1101);
    }

    #[test]
    fn labels_name_the_machine() {
        assert_eq!(
            SecureBackend::new(plain_cfg(SecurityMode::Xom)).label(),
            "XOM"
        );
        assert_eq!(
            SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024)).label(),
            "SNC-LRU 2KB fully-assoc"
        );
    }
}
