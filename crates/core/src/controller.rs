//! The secure memory controller: everything below L2.
//!
//! Implements the paper's three machines behind one
//! [`padlock_cpu::MemoryBackend`]:
//!
//! * **baseline** — raw DRAM;
//! * **XOM** — every off-chip line transfer passes through the crypto
//!   unit *in series*: read-miss latency = `mem + crypto` (Fig. 2);
//! * **OTP + SNC** — pads are computed in parallel with the DRAM access:
//!   read-miss latency = `max(mem, crypto) + 1` when the seed is at hand,
//!   which it is for instructions (address-seeded, §3.4.1), for clean
//!   data lines (sequence number known to be zero; DESIGN.md §3), and on
//!   SNC query hits. The miss cases follow Algorithm 1: under LRU the
//!   sequence number is fetched from memory and decrypted (`mem + crypto`)
//!   *before* pad generation can start; under no-replacement the line was
//!   direct-encrypted, i.e. the XOM path.
//!
//! # The transaction engine
//!
//! The controller is organised as a transaction engine rather than a
//! one-call-one-latency function: every request becomes a
//! [`MemTxn`] in a bounded in-flight queue (at most
//! `max_inflight` entries, MSHR-style), and a drain scheduler retires
//! queued transactions in three phases against per-resource timelines —
//! the DRAM channel (persistent occupancy), the per-channel DRAM
//! **banks** (each [`padlock_mem::BankSet`] bank's open-row register
//! and busy timeline, consulted by every fabric access when
//! `mem_banks > 1` so same-bank misses serialise on their
//! precharge/activate while different-bank misses overlap — the fourth
//! scheduling resource alongside channel, crypto, and ports), the
//! crypto pipeline ([`crate::engine::CryptoTimeline`], which coalesces
//! up to `crypto_pipeline_width` pad generations per issue slot), and
//! one lookup port per SNC shard ([`crate::engine::SncPorts`]):
//!
//! 1. **classify + first issue** — probe the (sharded) SNC, pick the
//!    path (fast / sequence-fetch / direct), and issue the first memory
//!    access; same-line reads merge into the earlier miss, and a read
//!    of a line the window already wrote back forwards straight from
//!    the write buffer instead of re-fetching ciphertext the
//!    controller just produced;
//! 2. **decrypt** — sequence-number decryptions claim crypto slots;
//! 3. **fill + pad** — overlapped line fetches issue, pads batch
//!    through the crypto timeline, evicted sequence numbers spill.
//!
//! # Drain order
//!
//! Phase one's memory accesses issue in arrival order under
//! [`DrainOrder::Fifo`] (the paper's controller, and the default). Under
//! [`DrainOrder::RowFirst`] the scheduler defers them until the window
//! is classified, then issues them in the fabric's FR-FCFS order
//! ([`padlock_mem::ChannelSet::row_first_order`]: first-ready,
//! row-hit-first, oldest-first against the live per-bank open-row
//! state) — so a window whose misses are row-mates opens each row once
//! and streams the rest as row hits instead of paying a
//! precharge + activate per miss. Everything order-sensitive to
//! *state* — SNC probes and installs, merge detection, writeback
//! processing, retirement — still runs in arrival order, which is why
//! reordering moves only completion cycles: traffic, controller, and
//! SNC counters are bit-identical between the two orders (the
//! `drain_order_properties` suite proves it), and on a flat
//! (`mem_banks = 1`) fabric `RowFirst` collapses to `Fifo` exactly.
//!
//! Blocking callers (`line_read`, `line_writeback`) enqueue one
//! transaction and drain immediately; `line_read_batch` keeps up to
//! `max_inflight` misses outstanding so their sequence-number fetches
//! and pad generations overlap. With `max_inflight = 1` and
//! `snc_shards = 1` a window never holds more than one transaction, no
//! resource is ever contended, and the engine's arithmetic is
//! bit-identical to the paper's single-miss model (the
//! `engine_vs_seed` differential test drives both against random
//! traces and compares every latency and traffic counter).
//!
//! Writebacks are enqueued in the write buffer with their ciphertext
//! ready-time and drain on idle channel slots; sequence-number fetches
//! and spills are tagged so Fig. 9's induced-traffic ratio falls out of
//! the traffic counters. Residual spill entries that never filled a
//! packed line can be flushed with [`SecureBackend::flush_spills`]
//! (called by `Machine` at measurement wrap-up).
//!
//! # Speculative singleton windows
//!
//! Because window-scoped resources (crypto slots, SNC ports, FR-FCFS
//! order) couple overlapping transactions, the controller is not
//! `eager_issue_safe` beyond the single-miss configuration — but most
//! deep-machine windows still end up holding exactly one read. The
//! `speculative_issue_at`/`speculative_confirm` pair exploits that: a
//! lone eligible miss issues immediately as a window of one (same
//! fresh-per-window crypto timeline and ports, so the arithmetic is
//! bit-identical to the parked singleton drain), with a checkpoint
//! ([`SpecWindow`]) capturing the touched channel, the controller
//! counters, and any SNC recency bump. If a second request arrives
//! before the drain, the window aborts — state rolls back to
//! parked-equal and the caller replays the whole batch. The LRU
//! SeqFetch path mutates beyond the checkpoint's cheap reach (SNC
//! occupancy, a victim spill), so its install is *deferred* to the
//! confirm ([`SeqInstall`]): nothing can interleave between the issue
//! and its confirm because every mutating entry point aborts first,
//! and an aborted window simply never runs the deferred tail.

use crate::config::{SecureBackendConfig, SecurityMode, SncPolicy};
use crate::engine::{CryptoTimeline, MemTxn, SncPorts, SpecWindow, TxnOp};
use crate::snc::{SncLookup, SncQueryUndo};
use crate::snc_shards::SncShards;
use padlock_cpu::{LineKind, MemoryBackend};
use padlock_mem::{ChannelSet, ChannelSnapshot, DrainOrder, TrafficClass};
use padlock_stats::CounterSet;
use std::collections::{BTreeSet, VecDeque};

/// Fixed-slot controller event counters, bumped as plain fields on
/// the classify hot paths and rendered as a [`CounterSet`] on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ControllerStats {
    xom_reads: u64,
    clean_bypass_reads: u64,
    otp_fast_reads: u64,
    snc_fetch_reads: u64,
    wb_forwarded_reads: u64,
    mshr_merged_reads: u64,
    norepl_direct_writes: u64,
    first_writebacks: u64,
    snc_fetch_updates: u64,
    context_flush_entries: u64,
}

impl ControllerStats {
    fn to_counters(self) -> CounterSet {
        // Only touched counters appear, matching the shape the
        // incrementally-built `CounterSet` had before the fixed-slot
        // rewrite (readers use `get`, which defaults absent names to 0).
        let mut set = CounterSet::new("controller");
        for (name, n) in [
            ("xom_reads", self.xom_reads),
            ("clean_bypass_reads", self.clean_bypass_reads),
            ("otp_fast_reads", self.otp_fast_reads),
            ("snc_fetch_reads", self.snc_fetch_reads),
            ("wb_forwarded_reads", self.wb_forwarded_reads),
            ("mshr_merged_reads", self.mshr_merged_reads),
            ("norepl_direct_writes", self.norepl_direct_writes),
            ("first_writebacks", self.first_writebacks),
            ("snc_fetch_updates", self.snc_fetch_updates),
            ("context_flush_entries", self.context_flush_entries),
        ] {
            if n > 0 {
                set.add(name, n);
            }
        }
        set
    }
}

/// The configurable secure memory controller.
///
/// # Examples
///
/// ```
/// use padlock_core::{SecureBackend, SecureBackendConfig, SecurityMode};
/// use padlock_cpu::{LineKind, MemoryBackend};
///
/// let mut xom = SecureBackend::new(SecureBackendConfig::paper(SecurityMode::Xom));
/// // XOM pays memory + crypto in series:
/// assert_eq!(xom.line_read(0, 0x4000, LineKind::Data), 150);
///
/// let mut otp = SecureBackend::new(
///     SecureBackendConfig::paper(SecurityMode::otp_lru_64k()));
/// // OTP overlaps them: max(100, 50) + 1.
/// assert_eq!(otp.line_read(0, 0x4000, LineKind::Data), 101);
/// ```
#[derive(Debug)]
pub struct SecureBackend {
    config: SecureBackendConfig,
    channels: ChannelSet,
    snc: Option<SncShards>,
    /// Lines that have ever been written back (their in-memory copy is
    /// OTP-dynamic or, under a full no-replacement SNC, direct-encrypted).
    written: BTreeSet<u64>,
    /// Evicted sequence numbers awaiting spill; 64 two-byte entries pack
    /// into one line-sized memory transaction.
    pending_spills: u32,
    /// The bounded in-flight transaction queue (MSHR entries awaiting a
    /// drain).
    queue: VecDeque<MemTxn>,
    stats: ControllerStats,
    /// Window-scoped scratch buffers, recycled across [`Self::drain_window`]
    /// calls so eager singleton windows do not allocate per miss. Always
    /// left empty/idle between windows; carries no cross-window state.
    scratch: WindowScratch,
    /// The speculative singleton window, when one is in flight (see
    /// [`SpecWindow`]); every mutating public entry point aborts it
    /// first so a coupled window is rolled back before the coupling
    /// request touches any state.
    spec: SpecWindow<SpecCheckpoint>,
    /// Channel snapshot backing the open window's rollback; reused
    /// across windows so steady-state speculation does not allocate.
    spec_snapshot: ChannelSnapshot,
    /// The compartment whose traffic is currently entering the shared
    /// fabric; every enqueued [`MemTxn`] is tagged with it. Single-core
    /// machines never move it off 0.
    active_requestor: u16,
    /// Per-compartment count of SNC entries this compartment *lost* to
    /// a different compartment's install or context-switch flush —
    /// indexed by the victim's compartment, bumped only when the active
    /// requestor differs from the victim's owner. The fairness signal
    /// of the shared SNC.
    snc_evicted_by_others: Vec<u64>,
}

/// Everything one speculated singleton read mutates, captured before
/// the issue so [`SecureBackend::spec_abort`] can unwind it exactly:
/// the speculated line's channel (restored from
/// [`SecureBackend::spec_snapshot`]), the fixed-slot controller
/// counters, and — when the path probed the SNC — the shard's recency
/// and stats. `written` and the queue are never touched at issue on
/// any eligible path, and the SeqFetch mutations the checkpoint could
/// not cheaply unwind (SNC occupancy, `pending_spills`, a victim's
/// spill write) are deferred behind [`SeqInstall`] until the confirm.
#[derive(Debug, Clone, Copy)]
struct SpecCheckpoint {
    line_addr: u64,
    stats: ControllerStats,
    snc_undo: Option<SncQueryUndo>,
    seq_install: Option<SeqInstall>,
}

/// The deferred tail of a speculated SeqFetch read: the fetched
/// sequence number's SNC install (and, on capacity eviction, the
/// victim's spill stamped with these times) runs at
/// [`MemoryBackend::speculative_confirm`], not at issue. Deferral is
/// sound because every mutating entry point aborts the open window
/// first, so nothing can observe the SNC — or the channels the spill
/// would touch — between the issue and its confirm; an aborted window
/// never runs the tail, leaving the replayed parked drain to do its
/// own install.
#[derive(Debug, Clone, Copy)]
struct SeqInstall {
    arrival: u64,
    spill_ready: u64,
}

/// Reusable drain-window buffers (see [`SecureBackend::scratch`]).
#[derive(Debug, Default)]
struct WindowScratch {
    txns: Vec<MemTxn>,
    slots: Vec<Slot>,
    ports: Option<SncPorts>,
}

/// Sequence-number entries packed per spill transaction (128B line /
/// 2B entry).
const SPILL_BATCH: u32 = 64;

/// Which latency path a classified read takes through the window.
#[derive(Debug, Clone, Copy)]
enum Path {
    /// Raw DRAM fill (insecure baseline).
    Plain,
    /// OTP fast path: pad generation overlapped with the fetch.
    Fast,
    /// Algorithm 1 miss: sequence fetch + decrypt before the fill.
    SeqFetch,
    /// Serial fetch-then-decrypt (XOM, and no-replacement SNC misses).
    Direct,
    /// Same-line merge with an earlier read in the window.
    Alias(usize),
    /// Forwarded from a same-window posted writeback to the same line:
    /// the data is still on chip in the write buffer, so the read never
    /// touches memory or the crypto unit.
    ///
    /// Unreachable from the public [`MemoryBackend`] entry points:
    /// `line_writeback` posts and drains its window synchronously
    /// (asserted there), so a read can never trail a writeback in one
    /// window — and speculative windows keep that shape, since a
    /// writeback landing in an open window aborts it and replays go
    /// through read-only batches. The arm stays live for direct queue
    /// injection (the write-buffer forwarding test below) and any
    /// future caller that batches writebacks with reads.
    WbForward,
    /// A writeback, fully processed (posted) in phase one.
    Posted,
}

/// Per-transaction scheduling scratch for one drain window.
#[derive(Debug)]
struct Slot {
    txn: MemTxn,
    path: Path,
    /// Phase-one memory access not yet issued: its ready cycle and
    /// traffic class. Only used under `DrainOrder::RowFirst`, where the
    /// scheduler defers fabric issue until the whole window is
    /// classified so row-mates can be grouped.
    fetch: Option<(u64, TrafficClass)>,
    /// Completion of the phase-one memory access (line fetch for
    /// `Fast`/`Direct`/`Plain`, sequence fetch for `SeqFetch`).
    fetched: u64,
    /// Completion of the phase-one/two crypto job (pad for `Fast`,
    /// sequence decrypt for `SeqFetch`).
    crypto_done: u64,
    /// Retire cycle (reads only).
    done: u64,
}

impl Slot {
    /// A slot with no scheduled work yet (writebacks, merges, and
    /// forwards never get any).
    fn inert(txn: MemTxn, path: Path) -> Self {
        Self {
            txn,
            path,
            fetch: None,
            fetched: 0,
            crypto_done: 0,
            done: 0,
        }
    }
}

impl SecureBackend {
    /// Creates a controller for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight` or `snc_shards` is zero, or (in OTP
    /// mode) if the shard count does not evenly divide the SNC entries.
    pub fn new(config: SecureBackendConfig) -> Self {
        assert!(config.max_inflight > 0, "max_inflight must be positive");
        assert!(config.snc_shards > 0, "snc_shards must be positive");
        assert!(config.mem_channels > 0, "mem_channels must be positive");
        assert!(config.mem_banks > 0, "mem_banks must be positive");
        let channels = ChannelSet::new(
            config.mem_channels,
            config.mem_latency,
            config.mem_occupancy,
            config.write_buffer_entries,
            u64::from(config.line_bytes),
        )
        .with_banks(config.bank_config());
        let snc = match config.mode {
            SecurityMode::Otp { snc } => Some(SncShards::new(snc, config.snc_shards)),
            _ => None,
        };
        Self {
            config,
            channels,
            snc,
            written: BTreeSet::new(),
            pending_spills: 0,
            queue: VecDeque::new(),
            stats: ControllerStats::default(),
            scratch: WindowScratch::default(),
            spec: SpecWindow::Closed,
            spec_snapshot: ChannelSnapshot::new(),
            active_requestor: 0,
            snc_evicted_by_others: Vec::new(),
        }
    }

    /// Declares which compartment's traffic enters the fabric next;
    /// every transaction enqueued after this call is tagged with
    /// `requestor`, and SNC victims owned by *other* compartments are
    /// charged against it. The multi-core server calls this before
    /// each core's scheduling step.
    pub fn set_active_requestor(&mut self, requestor: u16) {
        self.active_requestor = requestor;
    }

    /// The compartment currently tagged onto enqueued transactions.
    pub fn active_requestor(&self) -> u16 {
        self.active_requestor
    }

    /// Per-compartment counts of SNC entries evicted by a *different*
    /// compartment's install or context-switch flush, indexed by the
    /// victim entry's compartment ([`crate::server::compartment_of`] of
    /// its line address). Compartments past the last victim are absent
    /// (treat missing as 0).
    pub fn snc_evicted_by_others(&self) -> &[u64] {
        &self.snc_evicted_by_others
    }

    /// Charges the eviction of `victim_line` to the active requestor if
    /// the victim belongs to a different compartment.
    fn note_snc_eviction(&mut self, victim_line: u64) {
        let owner = crate::server::compartment_of(victim_line);
        if owner != usize::from(self.active_requestor) {
            if self.snc_evicted_by_others.len() <= owner {
                self.snc_evicted_by_others.resize(owner + 1, 0);
            }
            self.snc_evicted_by_others[owner] += 1;
        }
    }

    /// Rolls back an open speculative window: restores the speculated
    /// line's channel, the controller counters, and any SNC recency
    /// touch, leaving state exactly as if the speculation never
    /// issued. The window stays poisoned until the next drain's
    /// confirm. No-op when no window is open.
    fn spec_abort(&mut self) {
        if let Some(cp) = self.spec.abort() {
            self.channels
                .restore_channel(cp.line_addr, &self.spec_snapshot);
            if let Some(undo) = cp.snc_undo {
                self.snc
                    .as_mut()
                    .expect("a speculated SNC probe implies an SNC")
                    .undo_query(cp.line_addr, undo);
            }
            self.stats = cp.stats;
        }
    }

    /// Models the paper's 10-billion-instruction fast-forward for a
    /// long-running process: marks lines as previously written back and
    /// installs sequence numbers into the SNC (capacity permitting)
    /// without generating memory traffic.
    ///
    /// Two feeds, reflecting two kinds of old state:
    ///
    /// * `ancient` — long-dead allocations. Installed *first*: a
    ///   no-replacement SNC ends up full of them (the paper's gcc
    ///   observation that early sequence numbers hog every slot), while
    ///   LRU will evict them as live data arrives.
    /// * `active` — data the program still rewrites in place (streaming
    ///   update regions). Installed *last* so LRU retains it; under
    ///   no-replacement it takes whatever room the ancient feed left.
    pub fn pre_age<A, B>(&mut self, ancient: A, active: B)
    where
        A: IntoIterator<Item = u64>,
        B: IntoIterator<Item = u64>,
    {
        self.spec_abort();
        match self.config.mode {
            SecurityMode::Otp { snc: snc_cfg } => {
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                // Under no-replacement the *active* region was written
                // first in program order (it predates the churn), so it
                // claims slots first; the ancient churn then fills the
                // rest. Under LRU recency is what matters: ancient
                // first, active last.
                let feeds: [Box<dyn Iterator<Item = u64>>; 2] = match snc_cfg.policy {
                    SncPolicy::NoReplacement => [
                        Box::new(active.into_iter()),
                        Box::new(ancient.into_iter()),
                    ],
                    SncPolicy::Lru => [
                        Box::new(ancient.into_iter()),
                        Box::new(active.into_iter()),
                    ],
                };
                for feed in feeds {
                    for line in feed {
                        self.written.insert(line);
                        match snc_cfg.policy {
                            SncPolicy::NoReplacement => {
                                snc.try_install(line, 1);
                            }
                            SncPolicy::Lru => {
                                snc.install(line, 1);
                            }
                        }
                    }
                }
                snc.reset_stats();
            }
            _ => {
                // Aging only affects modes with per-line state.
            }
        }
        self.stats = ControllerStats::default();
    }

    /// Buffers one evicted sequence number; every [`SPILL_BATCH`]th
    /// entry issues a packed line-sized spill transaction.
    fn spill_seq(&mut self, now: u64, ready_at: u64, line_addr: u64) {
        self.pending_spills += 1;
        if self.pending_spills >= SPILL_BATCH {
            self.pending_spills = 0;
            self.channels.enqueue_write(
                now,
                ready_at,
                line_addr,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
    }

    /// Drains any residual spill entries (a partial pack of fewer than
    /// [`SPILL_BATCH`]) as one encrypted line-sized transaction, so
    /// `SeqWrite` traffic is not undercounted at measurement end.
    /// Returns the number of entries flushed.
    pub fn flush_spills(&mut self, now: u64) -> u32 {
        self.spec_abort();
        let entries = self.pending_spills;
        if entries > 0 {
            self.pending_spills = 0;
            self.channels.enqueue_write(
                now,
                now + self.crypto_latency(),
                0,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
        entries
    }

    /// Spill entries buffered but not yet issued as a packed
    /// transaction.
    pub fn pending_spills(&self) -> u32 {
        self.pending_spills
    }

    /// Transactions currently sitting in the in-flight queue (only
    /// non-zero mid-batch).
    pub fn inflight(&self) -> usize {
        self.queue.len()
    }

    /// The configuration.
    pub fn config(&self) -> &SecureBackendConfig {
        &self.config
    }

    /// The sharded SNC, when the mode has one.
    pub fn snc(&self) -> Option<&SncShards> {
        self.snc.as_ref()
    }

    /// The DRAM channel fabric (per-channel occupancy and statistics).
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Controller event counters (`otp_fast_reads`, `xom_reads`,
    /// `snc_fetch_reads`, `mshr_merged_reads`, ...) — a snapshot
    /// rendered from the fixed-slot fields.
    pub fn controller_stats(&self) -> CounterSet {
        self.stats.to_counters()
    }

    /// Crypto pipeline latency for one line (the paper charges the
    /// pipelined unit's end-to-end latency per line).
    fn crypto_latency(&self) -> u64 {
        self.config.crypto.pipeline_latency()
    }

    /// Flushes the SNC as on a context switch (§4.3, policy 1): every
    /// entry is encrypted through the crypto pipeline
    /// (`crypto_pipeline_width` entries per issue slot) and the
    /// ciphertext is spilled as packed line-sized transactions
    /// ([`SPILL_BATCH`] entries per line, like steady-state spills),
    /// striped round-robin across the channel fabric — so the flush's
    /// makespan shrinks as `mem_channels` grows instead of the whole
    /// SNC serialising through one controller, while the spilled-entry
    /// and packed-transaction counts stay exact regardless of fabric
    /// width. Returns the number of entries flushed.
    pub fn context_switch_flush(&mut self, now: u64) -> usize {
        self.spec_abort();
        let Some(snc) = self.snc.as_mut() else {
            return 0;
        };
        let entries = snc.flush();
        let mut crypto = CryptoTimeline::new(
            self.crypto_latency(),
            self.config.crypto_pipeline_width,
        );
        let fabric_width = self.channels.num_channels();
        for (pack_index, pack) in entries.chunks(SPILL_BATCH as usize).enumerate() {
            // A pack leaves when its last entry clears the crypto
            // pipeline; packs stripe over the fabric like the
            // sequence-number table's own channel-interleaved lines.
            let ready = pack
                .iter()
                .map(|_| crypto.issue_pad(now))
                .max()
                .unwrap_or(now);
            self.channels.demand_write_on(
                pack_index % fabric_width,
                ready,
                pack[0].line_addr,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
        self.stats.context_flush_entries += entries.len() as u64;
        for entry in &entries {
            self.note_snc_eviction(entry.line_addr);
        }
        entries.len()
    }

    /// Issues slot's phase-one memory access at `at` — or, when the
    /// drain order defers fabric issue, records it for the row-first
    /// pass to issue once the whole window is classified.
    fn issue_or_defer(
        channels: &mut ChannelSet,
        slot: &mut Slot,
        defer: bool,
        at: u64,
        class: TrafficClass,
        bytes: u32,
    ) {
        if defer {
            slot.fetch = Some((at, class));
        } else {
            slot.fetched = channels.demand_read(at, slot.txn.line_addr, class, bytes);
        }
    }

    /// Phase one of a drain: classify one read, probe the SNC through
    /// its shard port, and issue (or, under `RowFirst`, schedule) the
    /// first memory access.
    fn classify_read(
        &mut self,
        txn: &MemTxn,
        kind: LineKind,
        crypto: &mut CryptoTimeline,
        ports: &mut SncPorts,
        defer: bool,
    ) -> Slot {
        let bytes = self.config.line_bytes;
        let mut slot = Slot::inert(*txn, Path::Plain);
        match self.config.mode {
            SecurityMode::Insecure => {
                Self::issue_or_defer(
                    &mut self.channels,
                    &mut slot,
                    defer,
                    txn.arrival,
                    TrafficClass::LineRead,
                    bytes,
                );
            }
            SecurityMode::Xom => {
                self.stats.xom_reads += 1;
                slot.path = Path::Direct;
                Self::issue_or_defer(
                    &mut self.channels,
                    &mut slot,
                    defer,
                    txn.arrival,
                    TrafficClass::LineRead,
                    bytes,
                );
            }
            SecurityMode::Otp { snc: snc_cfg } => {
                // Instructions are only ever read: their seed is the
                // virtual address, always at hand (§3.4.1). Clean data
                // lines (never written back) still carry the loader's
                // address-seeded encryption: seed known. Neither probes
                // the SNC.
                let fast = if kind == LineKind::Instruction {
                    true
                } else if self.config.clean_lines_bypass && !self.written.contains(&txn.line_addr)
                {
                    self.stats.clean_bypass_reads += 1;
                    true
                } else {
                    false
                };
                if fast {
                    self.stats.otp_fast_reads += 1;
                    slot.path = Path::Fast;
                    Self::issue_or_defer(
                        &mut self.channels,
                        &mut slot,
                        defer,
                        txn.arrival,
                        TrafficClass::LineRead,
                        bytes,
                    );
                    slot.crypto_done = crypto.issue_pad(txn.arrival);
                    return slot;
                }
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let lookup_at = ports.acquire(snc.shard_of(txn.line_addr), txn.arrival);
                match snc.query(txn.line_addr) {
                    SncLookup::Hit(_) => {
                        self.stats.otp_fast_reads += 1;
                        slot.path = Path::Fast;
                        Self::issue_or_defer(
                            &mut self.channels,
                            &mut slot,
                            defer,
                            lookup_at,
                            TrafficClass::LineRead,
                            bytes,
                        );
                        slot.crypto_done = crypto.issue_pad(lookup_at);
                    }
                    SncLookup::Miss => match snc_cfg.policy {
                        // The line was encrypted directly when it was
                        // written while the SNC was full: XOM path.
                        SncPolicy::NoReplacement => {
                            self.stats.xom_reads += 1;
                            slot.path = Path::Direct;
                            Self::issue_or_defer(
                                &mut self.channels,
                                &mut slot,
                                defer,
                                lookup_at,
                                TrafficClass::LineRead,
                                bytes,
                            );
                        }
                        // Algorithm 1: fetch the sequence number first
                        // (from the line's own channel); the decrypt and
                        // overlapped line fetch follow in later phases.
                        SncPolicy::Lru => {
                            self.stats.snc_fetch_reads += 1;
                            slot.path = Path::SeqFetch;
                            Self::issue_or_defer(
                                &mut self.channels,
                                &mut slot,
                                defer,
                                lookup_at,
                                TrafficClass::SeqRead,
                                bytes,
                            );
                        }
                    },
                }
            }
        }
        slot
    }

    /// Retires every queued transaction, appending each read's
    /// completion cycle to `out` in queue order.
    fn drain_window(&mut self, out: &mut Vec<u64>) {
        if self.queue.is_empty() {
            return;
        }
        let mut window = std::mem::take(&mut self.scratch.txns);
        window.extend(self.queue.drain(..));
        let mut crypto = CryptoTimeline::new(
            self.crypto_latency(),
            self.config.crypto_pipeline_width,
        );
        let mut ports = match self.scratch.ports.take() {
            Some(ports) => ports, // already reset when parked
            None => SncPorts::new(self.config.snc_shards, self.config.snc_port_cycles),
        };
        let defer = self.config.drain_order == DrainOrder::RowFirst;
        let mut slots = std::mem::take(&mut self.scratch.slots);

        // Phase one: classify in arrival order, issue (Fifo) or
        // schedule (RowFirst) first accesses, and fully process posted
        // writebacks.
        for txn in window.drain(..) {
            let slot = match txn.op {
                TxnOp::Writeback => {
                    self.process_writeback(txn.arrival, txn.line_addr);
                    Slot::inert(txn, Path::Posted)
                }
                TxnOp::Read(kind) => {
                    // The newest same-line slot that owns data: a
                    // primary read miss (later misses merge into its
                    // MSHR entry) or a posted writeback (the line is
                    // still on chip in the write buffer — forward it
                    // instead of re-fetching ciphertext this window
                    // just encrypted).
                    let prev = slots.iter().rposition(|s| {
                        s.txn.line_addr == txn.line_addr
                            && !matches!(s.path, Path::Alias(_) | Path::WbForward)
                    });
                    match prev {
                        Some(p) if matches!(slots[p].txn.op, TxnOp::Writeback) => {
                            self.stats.wb_forwarded_reads += 1;
                            Slot::inert(txn, Path::WbForward)
                        }
                        Some(p) => {
                            self.stats.mshr_merged_reads += 1;
                            Slot::inert(txn, Path::Alias(p))
                        }
                        None => self.classify_read(&txn, kind, &mut crypto, &mut ports, defer),
                    }
                }
            };
            slots.push(slot);
        }

        // Row-first issue pass: release the deferred phase-one accesses
        // in the fabric's FR-FCFS order — first-ready, row-hit-first,
        // oldest-first against the live bank state — so row-mates
        // stream out of one activate without idling a bank behind a
        // not-yet-ready request.
        if defer {
            let pending: Vec<usize> = (0..slots.len())
                .filter(|&i| slots[i].fetch.is_some())
                .collect();
            let reqs: Vec<(u64, u64)> = pending
                .iter()
                .map(|&i| {
                    let (at, _) = slots[i].fetch.expect("pending slot has a fetch");
                    (at, slots[i].txn.line_addr)
                })
                .collect();
            for k in self.channels.row_first_order(&reqs) {
                let slot = &mut slots[pending[k]];
                let (at, class) = slot.fetch.take().expect("pending slot has a fetch");
                slot.fetched =
                    self.channels
                        .demand_read(at, slot.txn.line_addr, class, self.config.line_bytes);
            }
        }

        // Phase two: sequence-number decrypts claim crypto slots.
        for slot in slots.iter_mut() {
            if matches!(slot.path, Path::SeqFetch) {
                slot.crypto_done = crypto.issue_block(slot.fetched);
            }
        }

        // Phase three: overlapped fills, batched pad generation, spills,
        // serial decrypts — then retire.
        for i in 0..slots.len() {
            let (path, fetched, crypto_done) =
                (slots[i].path, slots[i].fetched, slots[i].crypto_done);
            slots[i].done = match path {
                Path::Posted => 0,
                Path::Plain => fetched,
                Path::Fast => fetched.max(crypto_done) + 1,
                Path::Direct => crypto.issue_block(fetched),
                Path::Alias(p) => slots[p].done,
                // The write buffer still holds the line this window
                // wrote back: one cycle to forward it, no memory or
                // crypto work (the controller had the plaintext before
                // it enciphered the writeback).
                Path::WbForward => slots[i].txn.arrival + 1,
                Path::SeqFetch => {
                    let seq_ready = crypto_done;
                    let line_fetched = self.channels.demand_read(
                        seq_ready,
                        slots[i].txn.line_addr,
                        TrafficClass::LineRead,
                        self.config.line_bytes,
                    );
                    let pad_done = crypto.issue_pad(seq_ready);
                    // Install the fetched number; spill the victim.
                    let arrival = slots[i].txn.arrival;
                    let line_addr = slots[i].txn.line_addr;
                    let spill_ready = seq_ready + self.crypto_latency();
                    let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                    if let Some(victim) = snc.install(line_addr, 1) {
                        self.note_snc_eviction(victim.line_addr);
                        self.spill_seq(arrival, spill_ready, victim.line_addr);
                    }
                    line_fetched.max(pad_done) + 1
                }
            };
        }

        for slot in &slots {
            if matches!(slot.txn.op, TxnOp::Read(_)) {
                out.push(slot.done);
            }
        }

        // Park the buffers (emptied, ports idled) for the next window.
        slots.clear();
        ports.reset();
        self.scratch.txns = window;
        self.scratch.slots = slots;
        self.scratch.ports = Some(ports);
    }

    /// A posted writeback: encrypt (per mode), update SNC state, and
    /// enqueue the ciphertext in the write buffer.
    fn process_writeback(&mut self, now: u64, line_addr: u64) {
        let bytes = self.config.line_bytes;
        match self.config.mode {
            SecurityMode::Insecure => {
                self.channels
                    .enqueue_write(now, now, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Xom => {
                // Encrypt in the write buffer, then drain.
                let ready = now + self.crypto_latency();
                self.channels
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Otp { snc: snc_cfg } => {
                let first_writeback = self.written.insert(line_addr);
                let crypto = self.crypto_latency();
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let ready = if snc.increment(line_addr).is_some() {
                    // Update hit: new seed, pad generation, XOR.
                    now + crypto
                } else {
                    match snc_cfg.policy {
                        SncPolicy::NoReplacement => {
                            if snc.try_install(line_addr, 1) {
                                now + crypto
                            } else {
                                // SNC full: direct (XOM-style) encryption
                                // for this line, now and forever.
                                self.stats.norepl_direct_writes += 1;
                                now + crypto
                            }
                        }
                        SncPolicy::Lru => {
                            let mut ready = now + crypto;
                            if first_writeback {
                                // Lazily-allocated sequence number: known
                                // zero, no fetch needed (DESIGN.md §3).
                                self.stats.first_writebacks += 1;
                            } else {
                                // Update miss, Algorithm 1 lines 13-25:
                                // fetch + decrypt the old number first.
                                self.stats.snc_fetch_updates += 1;
                                let seq_fetched = self.channels.demand_read(
                                    now,
                                    line_addr,
                                    TrafficClass::SeqRead,
                                    bytes,
                                );
                                ready = seq_fetched + crypto + crypto;
                            }
                            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                            if let Some(victim) = snc.install(line_addr, 1) {
                                self.note_snc_eviction(victim.line_addr);
                                let spill_ready = now + crypto;
                                self.spill_seq(now, spill_ready, victim.line_addr);
                            }
                            ready
                        }
                    }
                };
                self.channels
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
        }
    }
}

impl MemoryBackend for SecureBackend {
    fn line_read(&mut self, now: u64, line_addr: u64, kind: LineKind) -> u64 {
        self.spec_abort();
        self.queue
            .push_back(MemTxn::read(now, line_addr, kind).with_requestor(self.active_requestor));
        let mut out = Vec::with_capacity(1);
        self.drain_window(&mut out);
        out[0]
    }

    fn line_read_batch(&mut self, now: u64, reqs: &[(u64, LineKind)]) -> Vec<u64> {
        self.spec_abort();
        let mut out = Vec::with_capacity(reqs.len());
        for &(line_addr, kind) in reqs {
            if self.queue.len() >= self.config.max_inflight {
                self.drain_window(&mut out);
            }
            self.queue.push_back(
                MemTxn::read(now, line_addr, kind).with_requestor(self.active_requestor),
            );
        }
        self.drain_window(&mut out);
        out
    }

    fn line_read_batch_at(&mut self, reqs: &[(u64, u64, LineKind)]) -> Vec<u64> {
        self.spec_abort();
        let mut out = Vec::with_capacity(reqs.len());
        for &(at, line_addr, kind) in reqs {
            if self.queue.len() >= self.config.max_inflight {
                self.drain_window(&mut out);
            }
            self.queue.push_back(
                MemTxn::read(at, line_addr, kind).with_requestor(self.active_requestor),
            );
        }
        self.drain_window(&mut out);
        out
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        self.spec_abort();
        self.queue
            .push_back(MemTxn::writeback(now, line_addr).with_requestor(self.active_requestor));
        let mut out = Vec::new();
        self.drain_window(&mut out);
        // Writebacks post and drain synchronously, so no later read can
        // share a window with one through this API — `Path::WbForward`
        // stays unreachable from the public entry points (see its doc;
        // the forward logic itself is covered by direct queue injection
        // in the tests below).
        debug_assert!(self.queue.is_empty(), "writeback windows drain fully");
    }

    fn speculative_issue_at(&mut self, arrival: u64, line_addr: u64, kind: LineKind) -> Option<u64> {
        if !self.spec.is_closed() {
            // A second request in the window couples it (shared crypto
            // slots, port contention, FR-FCFS reordering): roll the
            // speculated read back so state is parked-equal for the
            // caller's fallback, and decline.
            self.spec_abort();
            return None;
        }
        if !self.queue.is_empty() {
            // A parked window is already forming; a singleton issued
            // now would jump it. (Unreachable through the hierarchy,
            // which only speculates into an empty backend — defensive.)
            return None;
        }
        // "Would this batch decompose?" for a batch of one: only if the
        // path is idempotent under rollback. Decide side-effect-free
        // *before* touching any state, so a decline mutates nothing.
        enum Shape {
            Plain,
            Direct,
            FastNoProbe,
            FastHit,
            DirectMiss,
            SeqFetch,
        }
        let shape = match self.config.mode {
            SecurityMode::Insecure => Shape::Plain,
            SecurityMode::Xom => Shape::Direct,
            SecurityMode::Otp { snc: snc_cfg } => {
                if kind == LineKind::Instruction
                    || (self.config.clean_lines_bypass && !self.written.contains(&line_addr))
                {
                    Shape::FastNoProbe
                } else {
                    let snc = self.snc.as_ref().expect("OTP mode has an SNC");
                    if snc.contains(line_addr) {
                        Shape::FastHit
                    } else if snc_cfg.policy == SncPolicy::NoReplacement {
                        Shape::DirectMiss
                    } else {
                        Shape::SeqFetch
                    }
                }
            }
        };
        // Checkpoint, then run the window-of-one arithmetic with the
        // same per-window objects `drain_window` would build — a fresh
        // crypto timeline and idle recycled ports — so the completion
        // is structurally the one a parked singleton drain produces,
        // and the steady-state issue path never allocates.
        let stats = self.stats;
        self.channels
            .snapshot_channel(line_addr, &mut self.spec_snapshot);
        let bytes = self.config.line_bytes;
        let mut crypto = CryptoTimeline::new(
            self.crypto_latency(),
            self.config.crypto_pipeline_width,
        );
        let mut ports = match self.scratch.ports.take() {
            Some(ports) => ports, // already reset when parked
            None => SncPorts::new(self.config.snc_shards, self.config.snc_port_cycles),
        };
        let mut snc_undo = None;
        let mut seq_install = None;
        let done = match shape {
            Shape::Plain => {
                self.channels
                    .demand_read(arrival, line_addr, TrafficClass::LineRead, bytes)
            }
            Shape::Direct => {
                self.stats.xom_reads += 1;
                let fetched = self.channels.demand_read(
                    arrival,
                    line_addr,
                    TrafficClass::LineRead,
                    bytes,
                );
                crypto.issue_block(fetched)
            }
            Shape::FastNoProbe => {
                if kind != LineKind::Instruction {
                    self.stats.clean_bypass_reads += 1;
                }
                self.stats.otp_fast_reads += 1;
                let fetched = self.channels.demand_read(
                    arrival,
                    line_addr,
                    TrafficClass::LineRead,
                    bytes,
                );
                fetched.max(crypto.issue_pad(arrival)) + 1
            }
            Shape::FastHit | Shape::DirectMiss => {
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let lookup_at = ports.acquire(snc.shard_of(line_addr), arrival);
                let (lookup, undo) = snc.query_undoable(line_addr);
                snc_undo = Some(undo);
                match lookup {
                    SncLookup::Hit(_) => {
                        self.stats.otp_fast_reads += 1;
                        let fetched = self.channels.demand_read(
                            lookup_at,
                            line_addr,
                            TrafficClass::LineRead,
                            bytes,
                        );
                        fetched.max(crypto.issue_pad(lookup_at)) + 1
                    }
                    SncLookup::Miss => {
                        self.stats.xom_reads += 1;
                        let fetched = self.channels.demand_read(
                            lookup_at,
                            line_addr,
                            TrafficClass::LineRead,
                            bytes,
                        );
                        crypto.issue_block(fetched)
                    }
                }
            }
            Shape::SeqFetch => {
                // Algorithm 1 as a window of one, the drain's phase
                // boundaries collapsed: probe, sequence fetch, decrypt,
                // then the overlapped line fill and pad. Both demand
                // reads route by `line_addr`, so the one-channel
                // snapshot above covers the rollback; the SNC install
                // and victim spill are deferred to the confirm via
                // `seq_install` so the abort never unwinds them.
                self.stats.snc_fetch_reads += 1;
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let lookup_at = ports.acquire(snc.shard_of(line_addr), arrival);
                let (lookup, undo) = snc.query_undoable(line_addr);
                debug_assert!(
                    matches!(lookup, SncLookup::Miss),
                    "the SeqFetch shape implies an SNC miss"
                );
                snc_undo = Some(undo);
                let seq_fetched = self.channels.demand_read(
                    lookup_at,
                    line_addr,
                    TrafficClass::SeqRead,
                    bytes,
                );
                let seq_ready = crypto.issue_block(seq_fetched);
                let line_fetched = self.channels.demand_read(
                    seq_ready,
                    line_addr,
                    TrafficClass::LineRead,
                    bytes,
                );
                let pad_done = crypto.issue_pad(seq_ready);
                seq_install = Some(SeqInstall {
                    arrival,
                    spill_ready: seq_ready + self.crypto_latency(),
                });
                line_fetched.max(pad_done) + 1
            }
        };
        ports.reset();
        self.scratch.ports = Some(ports);
        self.spec.open(SpecCheckpoint {
            line_addr,
            stats,
            snc_undo,
            seq_install,
        });
        Some(done)
    }

    fn speculative_confirm(&mut self) -> bool {
        match std::mem::replace(&mut self.spec, SpecWindow::Closed) {
            SpecWindow::Open(cp) => {
                // The speculation stands: run the SeqFetch tail the
                // issue deferred. State is untouched since the issue
                // (any interleaving call would have aborted), so the
                // install and spill land on exactly the state a parked
                // drain's phase three would have seen.
                if let Some(install) = cp.seq_install {
                    let snc = self.snc.as_mut().expect("a SeqFetch window implies an SNC");
                    if let Some(victim) = snc.install(cp.line_addr, 1) {
                        self.note_snc_eviction(victim.line_addr);
                        self.spill_seq(install.arrival, install.spill_ready, victim.line_addr);
                    }
                }
                true
            }
            _ => false,
        }
    }

    fn is_idle(&self, now: u64) -> bool {
        // Quiescent means the DRAM fabric has gone idle *and* no
        // transaction still sits in the in-flight queue. Buffered
        // sequence-number spills (`pending_spills`) are deliberately not
        // counted: they occupy no channel until a full batch packs, so
        // they do not represent overlap an incoming miss could ride.
        self.queue.is_empty() && self.channels.is_idle(now)
    }

    fn eager_issue_safe(&self) -> bool {
        // Every drain window gets fresh crypto-timeline and SNC-port
        // state, so two reads sharing a window couple: pads coalesce
        // into shared pipeline slots, same-shard lookups serialise on
        // the ports, and FR-FCFS reorders the window. With
        // `max_inflight = 1` (and FIFO order) every window holds one
        // read anyway — the queue is empty between backend calls
        // because `line_writeback` drains immediately — so issuing each
        // miss as its own singleton window touches identical
        // window-scoped state. (The `window_coupling_vetoes_eager_issue`
        // test demonstrates the >1 counterexample.)
        self.config.max_inflight == 1 && self.config.drain_order == DrainOrder::Fifo
    }

    fn drain(&mut self, now: u64) {
        self.spec_abort();
        let mut out = Vec::new();
        self.drain_window(&mut out);
        self.flush_spills(now);
        // Force residual buffered writebacks out so per-channel
        // LineWrite/SeqWrite counters are exact at window end.
        self.channels.flush_writes(now);
    }

    fn traffic(&self) -> CounterSet {
        self.channels.stats()
    }

    fn reset_stats(&mut self) {
        self.spec_abort();
        self.channels.reset_stats();
        self.stats = ControllerStats::default();
        self.snc_evicted_by_others.clear();
        if let Some(snc) = self.snc.as_mut() {
            snc.reset_stats();
        }
    }

    fn label(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SncConfig, SncOrganization};

    fn otp_cfg(policy: SncPolicy, entries: usize) -> SecureBackendConfig {
        let mut cfg = SecureBackendConfig::paper(SecurityMode::Otp {
            snc: SncConfig {
                capacity_bytes: entries * 2,
                entry_bytes: 2,
                organization: SncOrganization::FullyAssociative,
                policy,
                covered_line_bytes: 128,
            },
        });
        cfg.mem_occupancy = 0; // isolate latency arithmetic from contention
        cfg
    }

    fn plain_cfg(mode: SecurityMode) -> SecureBackendConfig {
        let mut cfg = SecureBackendConfig::paper(mode);
        cfg.mem_occupancy = 0;
        cfg
    }

    #[test]
    fn baseline_read_is_pure_memory_latency() {
        let mut b = SecureBackend::new(plain_cfg(SecurityMode::Insecure));
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 100);
    }

    #[test]
    fn xom_read_serialises_crypto() {
        let mut b = SecureBackend::new(plain_cfg(SecurityMode::Xom));
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 150);
        assert_eq!(b.line_read(0, 0x4080, LineKind::Instruction), 150);
    }

    #[test]
    fn xom_slow_crypto_costs_202() {
        let mut b = SecureBackend::new(plain_cfg(SecurityMode::Xom).with_slow_crypto());
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 202);
    }

    #[test]
    fn otp_instruction_read_is_max_plus_one() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        assert_eq!(b.line_read(0, 0x4000, LineKind::Instruction), 101);
    }

    #[test]
    fn otp_slow_crypto_still_overlaps() {
        // Fig. 10's point: with a 102-cycle unit, OTP costs
        // max(100, 102) + 1 = 103, not 202.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024).with_slow_crypto());
        assert_eq!(b.line_read(0, 0x4000, LineKind::Instruction), 103);
    }

    #[test]
    fn otp_clean_data_bypasses_snc() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        assert_eq!(b.line_read(0, 0x8000, LineKind::Data), 101);
        assert_eq!(b.controller_stats().get("clean_bypass_reads"), 1);
        assert_eq!(b.snc().unwrap().stats().get("query_misses"), 0);
    }

    #[test]
    fn otp_written_line_hits_snc_and_stays_fast() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        b.line_writeback(0, 0x8000);
        assert_eq!(b.line_read(1000, 0x8000, LineKind::Data), 1101);
        assert_eq!(b.snc().unwrap().stats().get("query_hits"), 1);
    }

    #[test]
    fn otp_lru_query_miss_pays_sequence_fetch() {
        // 1-entry SNC: writing a second line evicts the first's number.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        b.line_writeback(0, 0x8000);
        b.line_writeback(10, 0x9000); // evicts 0x8000's entry
        // Read of 0x8000: seq fetch (100) + decrypt (50), then the line
        // fetch (100) overlapping pad generation (50), + 1.
        let done = b.line_read(1000, 0x8000, LineKind::Data);
        assert_eq!(done, 1000 + 100 + 50 + 100 + 1);
        assert_eq!(b.controller_stats().get("snc_fetch_reads"), 1);
        assert!(b.traffic().get("seq_reads") >= 1);
    }

    #[test]
    fn otp_norepl_full_snc_degrades_to_xom_for_those_lines() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::NoReplacement, 1));
        b.line_writeback(0, 0x8000); // takes the only slot
        b.line_writeback(10, 0x9000); // SNC full -> direct encryption
        assert_eq!(b.controller_stats().get("norepl_direct_writes"), 1);
        // Re-read of the covered line: fast path.
        assert_eq!(b.line_read(1000, 0x8000, LineKind::Data), 1101);
        // Re-read of the uncovered line: XOM path.
        assert_eq!(b.line_read(2000, 0x9000, LineKind::Data), 2150);
    }

    #[test]
    fn otp_first_writeback_skips_sequence_fetch() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        b.line_writeback(0, 0x8000);
        assert_eq!(b.controller_stats().get("first_writebacks"), 1);
        assert_eq!(b.traffic().get("seq_reads"), 0);
    }

    #[test]
    fn otp_update_miss_after_eviction_fetches_sequence() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        b.line_writeback(0, 0x8000);
        b.line_writeback(10, 0x9000); // evicts 0x8000
        b.line_writeback(20, 0x8000); // update miss: fetch required
        assert_eq!(b.controller_stats().get("snc_fetch_updates"), 1);
        assert_eq!(b.traffic().get("seq_reads"), 1);
    }

    #[test]
    fn spilled_sequence_numbers_batch_into_line_transactions() {
        // Spills pack SPILL_BATCH (64) two-byte entries per memory
        // transaction; 65 evictions produce exactly one spill write.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        for i in 0..=65u64 {
            b.line_writeback(i, 0x8000 + i * 128);
        }
        assert_eq!(b.traffic().get("seq_writes"), 1);
        assert_eq!(b.snc().unwrap().stats().get("spills"), 65);
    }

    #[test]
    fn flush_spills_drains_a_partial_pack() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
        for i in 0..3u64 {
            b.line_writeback(i, 0x8000 + i * 128);
        }
        // Two evictions buffered, none issued yet.
        assert_eq!(b.pending_spills(), 2);
        assert_eq!(b.traffic().get("seq_writes"), 0);
        assert_eq!(b.flush_spills(1000), 2);
        assert_eq!(b.pending_spills(), 0);
        assert_eq!(b.traffic().get("seq_writes"), 1);
        // Idempotent once drained.
        assert_eq!(b.flush_spills(2000), 0);
        assert_eq!(b.traffic().get("seq_writes"), 1);
    }

    #[test]
    fn writebacks_become_line_write_traffic() {
        for mode in [SecurityMode::Insecure, SecurityMode::Xom] {
            let mut b = SecureBackend::new(plain_cfg(mode));
            b.line_writeback(0, 0x8000);
            // Force a drain by issuing a demand read far in the future.
            b.line_read(10_000, 0x9000, LineKind::Data);
            assert_eq!(b.traffic().get("line_writes"), 1, "mode {mode}");
        }
    }

    #[test]
    fn context_switch_flush_spills_every_entry() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 16));
        for i in 0..5u64 {
            b.line_writeback(0, 0x8000 + i * 128);
        }
        let flushed = b.context_switch_flush(100);
        assert_eq!(flushed, 5);
        assert_eq!(b.snc().unwrap().occupancy(), 0);
        assert_eq!(b.controller_stats().get("context_flush_entries"), 5);
        // Five entries pack into one line-sized spill transaction.
        assert_eq!(b.traffic().get("seq_writes"), 1);
        assert_eq!(
            b.traffic().get("seq_write_bytes"),
            u64::from(b.config().line_bytes)
        );
    }

    #[test]
    fn context_switch_flush_spreads_over_the_fabric() {
        // A full SNC flush: the makespan (fabric busy frontier past the
        // flush instant) must shrink as channels grow, while the
        // spilled-entry and packed-transaction counts stay exact.
        let entries = 1024usize;
        let now = 10_000u64;
        let mut last_makespan = u64::MAX;
        for channels in [1usize, 2, 4, 8] {
            let mut cfg = otp_cfg(SncPolicy::Lru, entries).with_mem_channels(channels);
            // A narrow spill bus (1 byte/cycle): the fabric, not the
            // crypto pipeline, is the flush bottleneck, so fabric width
            // is what the makespan measures.
            cfg.mem_occupancy = 128;
            let mut b = SecureBackend::new(cfg);
            for i in 0..entries as u64 {
                b.line_writeback(i, 0x10_0000 + i * 128);
            }
            let start = b.channels().busy_until().max(now);
            assert_eq!(b.context_switch_flush(start), entries);
            let makespan = b.channels().busy_until() - start;
            assert!(
                makespan < last_makespan,
                "{channels} channels: makespan {makespan} vs previous {last_makespan}"
            );
            last_makespan = makespan;
            // Counters are fabric-width invariant: exactly
            // entries / SPILL_BATCH packed line transactions.
            assert_eq!(b.controller_stats().get("context_flush_entries"), 1024);
            assert_eq!(b.traffic().get("seq_writes"), (entries / 64) as u64);
            assert_eq!(
                b.traffic().get("seq_write_bytes"),
                (entries / 64) as u64 * u64::from(b.config().line_bytes)
            );
            // And every channel took part.
            let spilled_channels = b
                .channels()
                .channels()
                .iter()
                .filter(|ch| ch.mem().stats().get("seq_writes") > 0)
                .count();
            assert_eq!(spilled_channels, channels);
        }
    }

    #[test]
    fn reset_stats_clears_everything_but_state() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 16));
        b.line_writeback(0, 0x8000);
        b.line_read(100, 0x8000, LineKind::Data);
        b.reset_stats();
        assert_eq!(b.traffic().get("line_reads"), 0);
        assert_eq!(b.controller_stats().get("otp_fast_reads"), 0);
        // The written-set and SNC contents survive.
        assert_eq!(b.line_read(1000, 0x8000, LineKind::Data), 1101);
    }

    #[test]
    fn labels_name_the_machine() {
        assert_eq!(
            SecureBackend::new(plain_cfg(SecurityMode::Xom)).label(),
            "XOM"
        );
        assert_eq!(
            SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024)).label(),
            "SNC-LRU 2KB fully-assoc"
        );
        assert_eq!(
            SecureBackend::new(
                otp_cfg(SncPolicy::Lru, 1024)
                    .with_max_inflight(8)
                    .with_snc_shards(4)
            )
            .label(),
            "SNC-LRU 2KB fully-assoc x4 shards mlp8"
        );
    }

    #[test]
    fn batch_with_single_inflight_matches_sequential_reads() {
        let reqs: Vec<(u64, LineKind)> = (0..20u64)
            .map(|i| (0x8000 + i * 128, LineKind::Data))
            .collect();
        let mut seq = SecureBackend::new(otp_cfg(SncPolicy::Lru, 4));
        let mut bat = SecureBackend::new(otp_cfg(SncPolicy::Lru, 4));
        for b in [&mut seq, &mut bat] {
            b.pre_age((0..20u64).map(|i| 0x8000 + i * 128), std::iter::empty());
        }
        let sequential: Vec<u64> = reqs
            .iter()
            .map(|&(a, k)| seq.line_read(0, a, k))
            .collect();
        let batched = bat.line_read_batch(0, &reqs);
        assert_eq!(sequential, batched);
    }

    #[test]
    fn overlapped_misses_retire_faster_than_serial_ones() {
        // A miss-heavy batch (written lines, SNC long since evicted)
        // must retire monotonically faster as max_inflight grows.
        let lines = 64u64;
        let reqs: Vec<(u64, LineKind)> = (0..lines)
            .map(|i| (0x10_0000 + i * 128, LineKind::Data))
            .collect();
        let mut last = u64::MAX;
        for inflight in [1usize, 2, 4, 8, 16] {
            let mut cfg = otp_cfg(SncPolicy::Lru, 4).with_max_inflight(inflight);
            cfg.mem_occupancy = 8;
            let mut b = SecureBackend::new(cfg);
            b.pre_age(
                (0..lines).map(|i| 0x10_0000 + i * 128),
                std::iter::empty(),
            );
            let dones = b.line_read_batch(0, &reqs);
            let finish = dones.iter().copied().max().unwrap();
            assert!(
                finish <= last,
                "inflight {inflight}: {finish} vs previous {last}"
            );
            last = finish;
        }
    }

    #[test]
    fn same_line_misses_merge_in_one_window() {
        let mut cfg = otp_cfg(SncPolicy::Lru, 1024).with_max_inflight(4);
        cfg.mem_occupancy = 8;
        let mut b = SecureBackend::new(cfg);
        let reqs = [
            (0x8000u64, LineKind::Data),
            (0x8000, LineKind::Data),
            (0x8080, LineKind::Data),
        ];
        let dones = b.line_read_batch(0, &reqs);
        assert_eq!(dones[0], dones[1], "merged miss shares the fill");
        assert_eq!(b.controller_stats().get("mshr_merged_reads"), 1);
        // Only two lines actually fetched.
        assert_eq!(b.traffic().get("line_reads"), 2);
    }

    #[test]
    fn same_window_writeback_then_read_forwards_from_the_write_buffer() {
        // Regression for the same-window aliasing gap: the merge scan
        // used to match only earlier *read* slots, so a read queued
        // behind a posted writeback to the same line re-fetched (and
        // re-decrypted) data the controller had just encrypted. The
        // public entry points drain writebacks immediately today, so
        // this drives the queue directly — the shape an adaptive
        // (idle-triggered) drain will produce once writebacks linger.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
        b.queue.push_back(MemTxn::writeback(0, 0x8000));
        b.queue.push_back(MemTxn::read(10, 0x8000, LineKind::Data));
        b.queue.push_back(MemTxn::read(20, 0x9000, LineKind::Data));
        let mut out = Vec::new();
        b.drain_window(&mut out);
        // The aliased read forwards in one cycle; the unrelated read
        // still pays its full fast path.
        assert_eq!(out, vec![11, 20 + 100 + 1]);
        assert_eq!(b.controller_stats().get("wb_forwarded_reads"), 1);
        // No memory traffic for the forwarded line: one line fetch
        // (0x9000) plus the writeback's own (buffered) line write.
        assert_eq!(b.traffic().get("line_reads"), 1);
        // A second read behind the forward also forwards rather than
        // aliasing the forwarded slot.
        b.queue.push_back(MemTxn::writeback(1_000, 0xa000));
        b.queue.push_back(MemTxn::read(1_010, 0xa000, LineKind::Data));
        b.queue.push_back(MemTxn::read(1_020, 0xa000, LineKind::Data));
        let mut out = Vec::new();
        b.drain_window(&mut out);
        assert_eq!(out, vec![1_011, 1_021]);
        assert_eq!(b.controller_stats().get("wb_forwarded_reads"), 3);
        assert_eq!(b.controller_stats().get("mshr_merged_reads"), 0);
    }

    #[test]
    fn row_first_converts_same_row_conflicts_into_hits() {
        use padlock_mem::{
            DrainOrder, ROW_LINES, DEFAULT_ROW_CONFLICT_CYCLES, DEFAULT_ROW_HIT_CYCLES,
        };
        // One channel, two banks: rows 0 and 2 share bank 0. The window
        // [r0, r2, r0, r2] in arrival order ping-pongs the open row (4
        // conflicts); row-first groups the row-mates (2 conflicts + 2
        // hits) and finishes strictly earlier.
        let row = 128 * ROW_LINES;
        let reqs: Vec<(u64, LineKind)> = [0, 2 * row, 128, 2 * row + 128]
            .into_iter()
            .map(|a| (a, LineKind::Instruction))
            .collect();
        let run = |order: DrainOrder| {
            let mut cfg = plain_cfg(SecurityMode::Insecure)
                .with_mem_banks(2)
                .with_max_inflight(8)
                .with_drain_order(order);
            cfg.mem_occupancy = 8;
            let mut b = SecureBackend::new(cfg);
            let dones = b.line_read_batch(0, &reqs);
            (dones, b.traffic().get("row_hits"), b.traffic().get("row_conflicts"))
        };
        let (fifo, fifo_hits, fifo_conflicts) = run(DrainOrder::Fifo);
        let (rowf, rowf_hits, rowf_conflicts) = run(DrainOrder::RowFirst);
        assert_eq!((fifo_hits, fifo_conflicts), (0, 4));
        assert_eq!((rowf_hits, rowf_conflicts), (2, 2));
        // Row totals are order-invariant; the makespan improves by the
        // two converted activates.
        assert_eq!(fifo_hits + fifo_conflicts, rowf_hits + rowf_conflicts);
        let fifo_end = fifo.iter().max().copied().unwrap();
        let rowf_end = rowf.iter().max().copied().unwrap();
        assert_eq!(
            fifo_end - rowf_end,
            2 * (DEFAULT_ROW_CONFLICT_CYCLES - DEFAULT_ROW_HIT_CYCLES)
        );
        // Completions still come back in request order: the reordered
        // window retires against the original arrival sequence.
        assert_eq!(fifo.len(), rowf.len());
    }

    #[test]
    fn row_first_on_a_flat_fabric_is_exactly_fifo() {
        use padlock_mem::DrainOrder;
        let reqs: Vec<(u64, LineKind)> = (0..32u64)
            .map(|i| (0x10_0000 + (i * 37 % 64) * 128, LineKind::Data))
            .collect();
        let mut fifo = SecureBackend::new(
            otp_cfg(SncPolicy::Lru, 4).with_max_inflight(8),
        );
        let mut rowf = SecureBackend::new(
            otp_cfg(SncPolicy::Lru, 4)
                .with_max_inflight(8)
                .with_drain_order(DrainOrder::RowFirst),
        );
        assert_eq!(
            fifo.line_read_batch(0, &reqs),
            rowf.line_read_batch(0, &reqs)
        );
    }

    #[test]
    fn window_coupling_vetoes_eager_issue() {
        // `eager_issue_safe` promises that issuing each miss as its own
        // singleton window is indistinguishable from the batched drain.
        // At `max_inflight > 1` it is not: crypto-timeline slots, SNC
        // ports, and bank state are window-scoped, so batch-mates
        // contend inside one window but not across singleton windows.
        // XOM decrypts every fetched line through the window's shared
        // crypto pipeline. Four channels land the four fetches on the
        // same cycle, so the batch serialises the decrypt issue slots
        // while four singleton windows each start from a fresh
        // pipeline.
        let cfg = || {
            plain_cfg(SecurityMode::Xom)
                .with_max_inflight(8)
                .with_mem_channels(4)
        };
        let reqs: Vec<(u64, u64, LineKind)> = (0..4u64)
            .map(|i| (0, i * 128, LineKind::Data))
            .collect();
        let mut batched = SecureBackend::new(cfg());
        let together = batched.line_read_batch_at(&reqs);
        let mut singleton = SecureBackend::new(cfg());
        let alone: Vec<u64> = reqs
            .iter()
            .map(|r| {
                singleton
                    .line_read_batch_at(&[*r])
                    .first()
                    .copied()
                    .expect("singleton window returns one completion")
            })
            .collect();
        assert_ne!(
            together, alone,
            "window-scoped contention must distinguish batched from \
             singleton issue at max_inflight > 1"
        );
        assert!(!batched.eager_issue_safe());
        // With singleton windows (the default config) the two regimes
        // coincide, so the backend may declare eager issue safe; a
        // reordering drain policy re-vetoes it.
        assert!(SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024)).eager_issue_safe());
        assert!(!SecureBackend::new(
            otp_cfg(SncPolicy::Lru, 1024).with_drain_order(DrainOrder::RowFirst)
        )
        .eager_issue_safe());
    }

    #[test]
    fn closed_page_never_reports_row_hits_through_the_controller() {
        use padlock_mem::PagePolicy;
        let mut cfg = plain_cfg(SecurityMode::Insecure)
            .with_mem_banks(4)
            .with_max_inflight(8)
            .with_page_policy(PagePolicy::Closed);
        cfg.mem_occupancy = 8;
        let mut b = SecureBackend::new(cfg);
        let reqs: Vec<(u64, LineKind)> = (0..16u64)
            .map(|i| (i * 128, LineKind::Data))
            .collect();
        b.line_read_batch(0, &reqs);
        assert_eq!(b.traffic().get("row_hits"), 0);
        assert_eq!(b.traffic().get("row_conflicts"), 16);
    }

    #[test]
    fn sharded_controller_still_answers_reads() {
        let mut cfg = otp_cfg(SncPolicy::Lru, 1024).with_snc_shards(4);
        cfg.mem_occupancy = 8;
        let mut b = SecureBackend::new(cfg);
        b.line_writeback(0, 0x8000);
        b.line_writeback(0, 0x8080);
        let d0 = b.line_read(5000, 0x8000, LineKind::Data);
        let d1 = b.line_read(10_000, 0x8080, LineKind::Data);
        assert!(d0 > 5000 && d1 > 10_000);
        assert_eq!(b.snc().unwrap().stats().get("query_hits"), 2);
        assert_eq!(b.snc().unwrap().num_shards(), 4);
    }

    /// Both directions, so a counter nonzero on only one side fails.
    fn assert_counters_eq(a: &CounterSet, b: &CounterSet, what: &str) {
        for (name, v) in a.iter() {
            assert_eq!(b.get(name), v, "{what} {name}");
        }
        for (name, v) in b.iter() {
            assert_eq!(a.get(name), v, "{what} {name}");
        }
    }

    fn assert_state_eq(spec: &SecureBackend, parked: &SecureBackend) {
        assert_counters_eq(&spec.traffic(), &parked.traffic(), "traffic");
        assert_counters_eq(
            &spec.controller_stats(),
            &parked.controller_stats(),
            "controller",
        );
        if let (Some(s), Some(p)) = (spec.snc(), parked.snc()) {
            assert_counters_eq(&s.stats(), &p.stats(), "snc");
        }
    }

    fn spec_vs_parked(mut mk: impl FnMut() -> SecureBackend, line: u64, kind: LineKind) {
        let mut spec = mk();
        let mut parked = mk();
        let done_s = spec
            .speculative_issue_at(40, line, kind)
            .expect("path is speculation-eligible");
        assert!(spec.speculative_confirm());
        let done_p = parked.line_read_batch_at(&[(40, line, kind)])[0];
        assert_eq!(done_s, done_p, "speculated singleton vs parked drain");
        assert_state_eq(&spec, &parked);
    }

    #[test]
    fn speculative_singleton_matches_the_parked_drain_on_eligible_paths() {
        // Insecure (Plain) and XOM (Direct).
        spec_vs_parked(
            || SecureBackend::new(plain_cfg(SecurityMode::Insecure)),
            0x4000,
            LineKind::Data,
        );
        spec_vs_parked(
            || SecureBackend::new(plain_cfg(SecurityMode::Xom)),
            0x4000,
            LineKind::Data,
        );
        // OTP instruction and clean-bypass reads (Fast, no SNC probe).
        spec_vs_parked(
            || SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024)),
            0x4000,
            LineKind::Instruction,
        );
        spec_vs_parked(
            || SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024)),
            0x8000,
            LineKind::Data,
        );
        // OTP SNC hit (Fast behind the shard port + recency touch).
        spec_vs_parked(
            || {
                let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
                b.line_writeback(0, 0x8000);
                b
            },
            0x8000,
            LineKind::Data,
        );
        // OTP no-replacement SNC miss (Direct; the probe ticks the
        // set-clock even on a miss, so the undo matters).
        spec_vs_parked(
            || {
                let mut b = SecureBackend::new(otp_cfg(SncPolicy::NoReplacement, 1));
                b.line_writeback(0, 0x100); // fills the 1-entry SNC
                b.line_writeback(5, 0x8000); // SNC full: direct write
                b
            },
            0x8000,
            LineKind::Data,
        );
        // And on a contended banked FR-FCFS fabric, where the singleton
        // still drains identically in either order.
        spec_vs_parked(
            || {
                let mut cfg = otp_cfg(SncPolicy::Lru, 1024)
                    .with_mem_channels(2)
                    .with_mem_banks(2)
                    .with_drain_order(DrainOrder::RowFirst)
                    .with_max_inflight(8);
                cfg.mem_occupancy = 8;
                let mut b = SecureBackend::new(cfg);
                b.line_writeback(0, 0x8000);
                b
            },
            0x8000,
            LineKind::Data,
        );
    }

    #[test]
    fn speculative_issue_matches_the_parked_seqfetch_drain() {
        // Written line, SNC miss, LRU: Algorithm 1's sequence fetch.
        // The install (and any victim spill) defers to the confirm, so
        // the speculated singleton still lands bit-exact on the parked
        // drain — this is the dominant path on miss-heavy pre-aged
        // traces, the regime the speculation fast path targets.
        let mk = || {
            let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
            b.line_writeback(0, 0x8000);
            assert_eq!(b.context_switch_flush(10), 1, "empty the SNC");
            b
        };
        spec_vs_parked(mk, 0x8000, LineKind::Data);
        // The confirm ran the deferred install: the fetched number is
        // resident, so the next read is an SNC hit on both machines.
        let mut spec = mk();
        let mut parked = mk();
        let done_s = spec
            .speculative_issue_at(40, 0x8000, LineKind::Data)
            .expect("LRU miss speculates as a SeqFetch singleton");
        assert!(spec.speculative_confirm());
        assert_eq!(done_s, parked.line_read(40, 0x8000, LineKind::Data));
        assert_eq!(spec.controller_stats().get("snc_fetch_reads"), 1);
        assert_eq!(
            spec.line_read(5_000, 0x8000, LineKind::Data),
            parked.line_read(5_000, 0x8000, LineKind::Data)
        );
        assert_eq!(spec.snc().unwrap().stats().get("query_hits"), 1);
        assert_state_eq(&spec, &parked);
    }

    #[test]
    fn confirmed_seqfetch_spills_its_victim_exactly_like_the_parked_drain() {
        // A 1-entry SNC holding the active line: fetching the ancient
        // line's number evicts it, and the victim spill — deferred to
        // the confirm — must buffer and pack identically to the parked
        // drain's.
        let mk = || {
            let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1));
            b.pre_age([0x8000], [0x100]);
            b
        };
        let mut spec = mk();
        let mut parked = mk();
        let done_s = spec
            .speculative_issue_at(40, 0x8000, LineKind::Data)
            .expect("LRU miss speculates");
        assert!(spec.speculative_confirm());
        assert_eq!(done_s, parked.line_read(40, 0x8000, LineKind::Data));
        // One victim entry buffered on each side; flushing it issues
        // the same packed SeqWrite transaction.
        assert_eq!(spec.flush_spills(2_000), 1);
        assert_eq!(parked.flush_spills(2_000), 1);
        assert_state_eq(&spec, &parked);
    }

    #[test]
    fn aborted_seqfetch_never_runs_the_deferred_install() {
        let mk = || {
            let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
            b.line_writeback(0, 0x8000);
            assert_eq!(b.context_switch_flush(10), 1, "empty the SNC");
            b
        };
        let mut spec = mk();
        let mut parked = mk();
        assert!(spec
            .speculative_issue_at(40, 0x8000, LineKind::Data)
            .is_some());
        // Couple the window: the rollback reverts the probe, and the
        // deferred install simply never happens — no resident number,
        // no buffered spill.
        assert!(spec
            .speculative_issue_at(43, 0x9000, LineKind::Data)
            .is_none());
        assert!(!spec.speculative_confirm());
        assert_eq!(spec.snc().unwrap().stats().get("query_misses"), 0);
        assert_eq!(spec.flush_spills(100), 0, "no spill was buffered");
        assert_eq!(parked.flush_spills(100), 0);
        let reqs = [(40, 0x8000, LineKind::Data), (43, 0x9000, LineKind::Data)];
        assert_eq!(
            spec.line_read_batch_at(&reqs),
            parked.line_read_batch_at(&reqs)
        );
        assert_state_eq(&spec, &parked);
    }

    #[test]
    fn coupled_speculation_rolls_back_to_the_parked_state() {
        let mk = || {
            let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
            b.line_writeback(0, 0x8000);
            b
        };
        let mut spec = mk();
        let mut parked = mk();
        // Open a window on an SNC-hit read (channel + counters + SNC
        // recency all touched), then couple it with a second miss.
        assert!(spec
            .speculative_issue_at(40, 0x8000, LineKind::Data)
            .is_some());
        assert!(
            spec.speculative_issue_at(43, 0x9000, LineKind::Data)
                .is_none(),
            "second request in the window couples and aborts"
        );
        assert!(!spec.speculative_confirm(), "coupled window fails confirm");
        // The replay sees parked-equal state: identical completions and
        // counters to a machine that never speculated.
        let reqs = [(40, 0x8000, LineKind::Data), (43, 0x9000, LineKind::Data)];
        assert_eq!(
            spec.line_read_batch_at(&reqs),
            parked.line_read_batch_at(&reqs)
        );
        assert_state_eq(&spec, &parked);
    }

    #[test]
    fn writeback_aborts_an_open_window() {
        let mk = || {
            let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024));
            b.line_writeback(0, 0x8000);
            b
        };
        let mut spec = mk();
        let mut parked = mk();
        assert!(spec
            .speculative_issue_at(40, 0x8000, LineKind::Data)
            .is_some());
        spec.line_writeback(45, 0x9000);
        parked.line_writeback(45, 0x9000);
        assert!(!spec.speculative_confirm(), "writeback poisoned the window");
        let reqs = [(40, 0x8000, LineKind::Data)];
        assert_eq!(
            spec.line_read_batch_at(&reqs),
            parked.line_read_batch_at(&reqs)
        );
        assert_state_eq(&spec, &parked);
    }

    #[test]
    fn idle_accounts_for_every_compartments_inflight_txns() {
        // `drain_on_idle` keys on `is_idle`; with several compartments
        // sharing the backend, a queued transaction from *any*
        // requestor must keep the fabric non-idle, or one compartment's
        // adaptive drain would fire under another's in-flight miss.
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 1024).with_max_inflight(8));
        assert!(b.is_idle(0), "fresh backend is quiescent");
        b.queue
            .push_back(MemTxn::read(10, 0x8000, LineKind::Data).with_requestor(0));
        b.queue
            .push_back(MemTxn::read(12, (1 << 40) + 0x8000, LineKind::Data).with_requestor(1));
        assert!(
            !b.is_idle(u64::MAX),
            "queued transactions from any compartment must block idle"
        );
        let mut out = Vec::new();
        b.drain_window(&mut out);
        assert_eq!(out.len(), 2);
        assert!(
            b.is_idle(u64::MAX),
            "after the drain retires every compartment's transactions the fabric is idle"
        );
    }

    #[test]
    fn snc_evictions_by_other_compartments_are_attributed() {
        let mut b = SecureBackend::new(otp_cfg(SncPolicy::Lru, 8));
        // Compartment 0 fills the 8-entry SNC with its own lines.
        b.set_active_requestor(0);
        for i in 0..8u64 {
            b.line_writeback(i * 1_000, i * 128);
        }
        assert!(b.snc_evicted_by_others().iter().all(|&n| n == 0));
        // Compartment 1 installs into the full SNC: the LRU victims are
        // compartment 0's entries, charged as evictions by others.
        b.set_active_requestor(1);
        for i in 0..4u64 {
            b.line_writeback(100_000 + i * 1_000, (1 << 40) + i * 128);
        }
        assert_eq!(b.snc_evicted_by_others(), &[4]);
        // Evicting its own (now-oldest) survivors charges nobody.
        b.set_active_requestor(0);
        for i in 8..10u64 {
            b.line_writeback(200_000 + i * 1_000, i * 128);
        }
        assert_eq!(b.snc_evicted_by_others(), &[4]);
        // A context-switch flush with compartment 1 incoming charges it
        // for compartment 0's four remaining entries but not its own.
        b.set_active_requestor(1);
        let flushed = b.context_switch_flush(1_000_000);
        assert_eq!(flushed, 8);
        assert_eq!(b.snc_evicted_by_others(), &[4 + 4]);
        // reset_stats clears the attribution like every other counter.
        b.reset_stats();
        assert!(b.snc_evicted_by_others().is_empty());
    }
}
