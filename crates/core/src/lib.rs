//! The paper's contribution: one-time-pad (counter-mode) memory
//! encryption with a Sequence Number Cache, plus the XOM baseline it is
//! measured against.
//!
//! # What this crate provides
//!
//! **Timing layer** (drives every figure in the paper):
//!
//! * [`SecureBackend`] — a [`padlock_cpu::MemoryBackend`] implementing the
//!   three machines of the paper: the insecure baseline, XOM
//!   (decrypt-in-series, Fig. 2), and one-time-pad with an SNC (Fig. 4).
//!   Internally a **transaction engine**: requests become [`MemTxn`]
//!   records in a bounded in-flight queue (MSHR-style) and a drain
//!   scheduler retires them against per-resource timelines (DRAM
//!   channel occupancy, crypto-pipeline issue slots with batched pad
//!   precomputation, per-shard SNC ports), so batched misses overlap
//!   their sequence-number fetches and pad generations. With
//!   `max_inflight = 1` and `snc_shards = 1` (the paper defaults) the
//!   engine reproduces the paper's single-miss latencies bit-exactly —
//!   the `engine_vs_seed` differential test enforces it;
//! * [`SequenceNumberCache`] — the on-chip SNC in both organisations
//!   (fully associative / set-associative) and both management policies
//!   (no-replacement / LRU); [`SncShards`] interleaves N of them by
//!   line address for multi-controller configurations;
//! * [`Machine`] — a configured core + hierarchy + backend, with a
//!   warm-up-then-measure runner.
//!
//! **Functional layer** (real ciphertext; powers the tiny-ISA VM, the
//! examples, and the attack tests):
//!
//! * [`SecureMemory`] — encrypted memory with per-region protection,
//!   per-line sequence numbers, MAC integrity, and attack entry points;
//! * [`vendor`] — software packaging (symmetric encryption + RSA key
//!   wrapping) and the secure loader;
//! * [`compartment`] — XOM IDs, tagged register files, and the
//!   interrupt-time register encryption of the paper's §2.3/§4.3.
//!
//! # Examples
//!
//! ```
//! use padlock_core::{Machine, MachineConfig, SecurityMode};
//! use padlock_cpu::StrideWorkload;
//!
//! // Compare XOM and OTP on a small streaming workload.
//! let mut xom = Machine::new(MachineConfig::paper(SecurityMode::Xom));
//! let mut otp = Machine::new(MachineConfig::paper(SecurityMode::otp_lru_64k()));
//! let x = xom.run(&mut StrideWorkload::new(8 << 20, 128, 0.3), 2_000, 8_000);
//! let o = otp.run(&mut StrideWorkload::new(8 << 20, 128, 0.3), 2_000, 8_000);
//! assert!(o.stats.cycles <= x.stats.cycles);
//! ```

#![warn(missing_docs)]

pub mod compartment;
mod config;
mod controller;
pub mod engine;
mod machine;
mod secure_mem;
pub mod server;
mod snc;
mod snc_shards;
pub mod vendor;

pub use config::{SecureBackendConfig, SecurityMode, SeedScheme, SncConfig, SncOrganization, SncPolicy};
pub use controller::SecureBackend;
pub use engine::{MemTxn, SpecWindow, TxnOp};
pub use machine::{Machine, MachineConfig, Measurement};
pub use server::{
    CompartmentReport, SecureServer, ServerConfig, ServerMeasurement, ServerSlot,
};
pub use secure_mem::{
    AttackOutcome, IntegrityMode, LineProtection, LineSnapshot, MapRegionError, SecureMemory,
    SecureMemoryError,
};
pub use snc::{EvictedSeq, SequenceNumberCache, SncLookup, SncQueryUndo};
pub use snc_shards::SncShards;

// The sweep executor moves whole machines and their results across
// worker threads (`padlock_exec::SweepPool`); these compile-time bounds
// pin that down, per the T1 audit of the simulator's interior-mutability
// sites: a machine owns all of its state, so `Send` must hold and any
// future `Rc`/`RefCell` that breaks it fails right here, not in a
// distant bench build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<MachineConfig>();
    assert_send::<Measurement>();
    assert_send::<SecureBackend>();
    assert_send::<SecureBackendConfig>();
    assert_send::<SecureServer>();
    assert_send::<ServerConfig>();
    assert_send::<ServerMeasurement>();
};
