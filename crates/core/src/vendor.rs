//! Software packaging and the secure loader (paper §2.1).
//!
//! The vendor encrypts the program under a fresh symmetric key `Ks`,
//! wraps `Ks` with the target processor's public key, and ships
//! `{ciphertext, wrapped key, per-line MACs}`. The processor unwraps
//! `Ks` once (slow, asymmetric) and thereafter decrypts lines with the
//! fast symmetric path. Software packaged for processor A cannot run on
//! processor B: B's private key unwraps garbage, which the MACs reject —
//! the piracy protection the paper's title promises.

use crate::config::SeedScheme;
use crate::secure_mem::{IntegrityMode, LineProtection, SecureMemory};
use padlock_crypto::rsa::{KeyPair, PublicKey, RsaError};
use padlock_crypto::{CbcMac, CipherKind, OneTimePad};
use std::fmt;

/// A processor's burned-in identity: the asymmetric pair whose private
/// half never leaves the die.
///
/// # Examples
///
/// ```
/// use padlock_core::vendor::ProcessorIdentity;
///
/// let mut rng = rand::thread_rng();
/// let cpu = ProcessorIdentity::generate(0xC0FFEE, &mut rng);
/// assert_eq!(cpu.serial(), 0xC0FFEE);
/// ```
#[derive(Debug, Clone)]
pub struct ProcessorIdentity {
    serial: u64,
    keypair: KeyPair,
}

impl ProcessorIdentity {
    /// Manufactures a processor with a fresh key pair.
    ///
    /// Key size is kept small (toy RSA) so tests are fast; see
    /// `padlock-crypto::rsa` caveats.
    pub fn generate(serial: u64, rng: &mut impl rand::Rng) -> Self {
        Self {
            serial,
            keypair: KeyPair::generate(256, rng),
        }
    }

    /// The processor serial number.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// The public key a vendor targets.
    pub fn public_key(&self) -> &PublicKey {
        self.keypair.public()
    }

    fn unwrap_key(&self, wrapped: &[u8]) -> Result<Vec<u8>, RsaError> {
        self.keypair.private().decrypt(wrapped)
    }
}

/// What a segment holds, deciding its protection at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Instructions: OTP with address seeds, never written back.
    Code,
    /// Read-only data: same protection as code.
    RoData,
    /// Initialised writable data: OTP-dynamic after load.
    Data,
    /// Shipped in cleartext (shared library stubs, sample inputs).
    Plain,
}

impl SegmentKind {
    fn protection(self) -> LineProtection {
        match self {
            SegmentKind::Code | SegmentKind::RoData => LineProtection::OtpStatic,
            SegmentKind::Data => LineProtection::OtpDynamic,
            SegmentKind::Plain => LineProtection::Plaintext,
        }
    }
}

/// One contiguous, line-aligned program segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load base (line-aligned virtual address).
    pub base: u64,
    /// Segment kind.
    pub kind: SegmentKind,
    /// The shipped bytes: ciphertext for protected kinds, cleartext for
    /// [`SegmentKind::Plain`]. Padded to whole lines.
    pub bytes: Vec<u8>,
}

/// A shippable software package.
#[derive(Debug, Clone)]
pub struct SoftwarePackage {
    /// Product name.
    pub name: String,
    /// `Ks` wrapped with the target processor's public key.
    pub wrapped_key: Vec<u8>,
    /// The symmetric cipher the payload uses.
    pub cipher: CipherKind,
    /// The seed derivation scheme.
    pub seed_scheme: SeedScheme,
    /// Line size the payload was encrypted at.
    pub line_bytes: usize,
    /// Program segments.
    pub segments: Vec<Segment>,
    /// Per-line MACs over the shipped ciphertext, `(line_addr, tag)`.
    pub macs: Vec<(u64, [u8; 8])>,
    /// Program entry point.
    pub entry: u64,
}

/// Errors raised while building a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackageError {
    /// A segment base was not line-aligned.
    UnalignedSegment {
        /// The offending base address.
        base: u64,
    },
    /// Key wrapping failed (key too large for the toy RSA modulus).
    KeyWrap(RsaError),
}

impl fmt::Display for PackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackageError::UnalignedSegment { base } => {
                write!(f, "segment base {base:#x} is not line-aligned")
            }
            PackageError::KeyWrap(e) => write!(f, "key wrapping failed: {e}"),
        }
    }
}

impl std::error::Error for PackageError {}

/// Errors raised by the secure loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The wrapped key would not decrypt — software targeted at a
    /// different processor (the piracy case).
    WrongProcessor,
    /// The unwrapped key had an unexpected length.
    BadKeyLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes recovered.
        found: usize,
    },
    /// A shipped MAC failed verification after install (tampered
    /// package, or key mismatch that slipped past the sentinel).
    PackageTampered {
        /// The offending line.
        addr: u64,
    },
    /// Region conflicts while mapping segments.
    RegionConflict(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::WrongProcessor => {
                write!(f, "package is keyed to a different processor")
            }
            LoadError::BadKeyLength { expected, found } => {
                write!(f, "unwrapped key was {found} bytes, expected {expected}")
            }
            LoadError::PackageTampered { addr } => {
                write!(f, "package integrity check failed at {addr:#x}")
            }
            LoadError::RegionConflict(msg) => write!(f, "region conflict: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The software vendor: packages programs for a target processor.
#[derive(Debug, Clone)]
pub struct Vendor {
    cipher: CipherKind,
    seed_scheme: SeedScheme,
    line_bytes: usize,
}

impl Vendor {
    /// A vendor shipping DES-encrypted, paper-seeded, 128-byte-line
    /// packages (the paper's running configuration).
    pub fn paper_default() -> Self {
        Self {
            cipher: CipherKind::Des,
            seed_scheme: SeedScheme::PaperAdditive,
            line_bytes: 128,
        }
    }

    /// A vendor using a custom cipher/scheme.
    pub fn new(cipher: CipherKind, seed_scheme: SeedScheme, line_bytes: usize) -> Self {
        Self {
            cipher,
            seed_scheme,
            line_bytes,
        }
    }

    fn wide_seed(&self, line_va: u64) -> u64 {
        match self.seed_scheme {
            SeedScheme::PaperAdditive => line_va,
            SeedScheme::Structured => line_va & 0x0000_FFFF_FFFF_FFFF,
        }
    }

    /// Packages `segments` (plaintext) for the processor owning
    /// `target`; returns the shippable package.
    ///
    /// # Errors
    ///
    /// Returns [`PackageError`] on unaligned segments or key-wrapping
    /// failure.
    pub fn package(
        &self,
        name: &str,
        segments: &[(u64, SegmentKind, Vec<u8>)],
        entry: u64,
        target: &PublicKey,
        rng: &mut impl rand::Rng,
    ) -> Result<SoftwarePackage, PackageError> {
        let lb = self.line_bytes as u64;
        // Toy RSA: keep Ks short enough to fit under small moduli.
        let mut ks = vec![0u8; 16];
        rng.fill_bytes(&mut ks);
        ks.truncate(self.cipher.key_size().min(16));
        if ks.len() < self.cipher.key_size() {
            ks.resize(self.cipher.key_size(), 0x5A);
        }
        let wrapped_key = target
            .encrypt(&ks, rng)
            .map_err(PackageError::KeyWrap)?;

        let otp = OneTimePad::new(self.cipher.instantiate(&ks));
        let mut mac_key = ks.clone();
        for b in &mut mac_key {
            *b ^= 0xA5;
        }
        let mac = CbcMac::new(self.cipher.instantiate(&mac_key));

        let mut out_segments = Vec::new();
        let mut macs = Vec::new();
        for (base, kind, plain) in segments {
            if base % lb != 0 {
                return Err(PackageError::UnalignedSegment { base: *base });
            }
            let mut padded = plain.clone();
            let pad_to = padded.len().div_ceil(self.line_bytes) * self.line_bytes;
            padded.resize(pad_to, 0);
            let mut shipped = Vec::with_capacity(padded.len());
            for (i, line) in padded.chunks(self.line_bytes).enumerate() {
                let addr = base + (i * self.line_bytes) as u64;
                let bytes = match kind {
                    SegmentKind::Plain => line.to_vec(),
                    _ => otp.encrypt(self.wide_seed(addr), line),
                };
                macs.push((addr, mac.tag(addr, &bytes)));
                shipped.extend_from_slice(&bytes);
            }
            out_segments.push(Segment {
                base: *base,
                kind: *kind,
                bytes: shipped,
            });
        }

        Ok(SoftwarePackage {
            name: name.to_string(),
            wrapped_key,
            cipher: self.cipher,
            seed_scheme: self.seed_scheme,
            line_bytes: self.line_bytes,
            segments: out_segments,
            macs,
            entry,
        })
    }
}

/// A loaded, runnable program: decrypting memory plus the entry point.
#[derive(Debug)]
pub struct LoadedProgram {
    /// The functional secure memory holding the program.
    pub memory: SecureMemory,
    /// Entry point.
    pub entry: u64,
}

/// The processor-side secure loader.
#[derive(Debug, Clone, Copy, Default)]
pub struct SecureLoader {
    /// Integrity mode to run the program under.
    pub integrity: IntegrityMode,
}

impl SecureLoader {
    /// Creates a loader that configures the given integrity mode.
    pub fn new(integrity: IntegrityMode) -> Self {
        Self { integrity }
    }

    /// Loads `package` on `processor`: unwraps `Ks`, installs ciphertext,
    /// verifies the shipped MACs, and maps protection regions.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::WrongProcessor`] when the wrapped key does
    /// not unwrap (the piracy case), or
    /// [`LoadError::PackageTampered`] when shipped lines fail their MACs.
    pub fn load(
        &self,
        package: &SoftwarePackage,
        processor: &ProcessorIdentity,
    ) -> Result<LoadedProgram, LoadError> {
        let ks = processor
            .unwrap_key(&package.wrapped_key)
            .map_err(|_| LoadError::WrongProcessor)?;
        if ks.len() != package.cipher.key_size() {
            return Err(LoadError::BadKeyLength {
                expected: package.cipher.key_size(),
                found: ks.len(),
            });
        }

        // Verify the shipped MACs with the unwrapped key before any
        // installation is trusted.
        let mut mac_key = ks.clone();
        for b in &mut mac_key {
            *b ^= 0xA5;
        }
        let mac = CbcMac::new(package.cipher.instantiate(&mac_key));
        let mut shipped_macs = package.macs.iter();
        for seg in &package.segments {
            for (i, line) in seg.bytes.chunks(package.line_bytes).enumerate() {
                let addr = seg.base + (i * package.line_bytes) as u64;
                let (mac_addr, tag) = shipped_macs
                    .next()
                    .ok_or(LoadError::PackageTampered { addr })?;
                if *mac_addr != addr || !mac.verify(addr, line, tag) {
                    return Err(LoadError::PackageTampered { addr });
                }
            }
        }

        let mut memory = SecureMemory::new(
            package.cipher,
            &ks,
            package.seed_scheme,
            package.line_bytes,
            self.integrity,
        );
        for seg in &package.segments {
            let end = seg.base + seg.bytes.len() as u64;
            memory
                .add_region(&package.name, seg.base, end, seg.kind.protection())
                .map_err(|e| LoadError::RegionConflict(e.to_string()))?;
        }
        for seg in &package.segments {
            for (i, line) in seg.bytes.chunks(package.line_bytes).enumerate() {
                let addr = seg.base + (i * package.line_bytes) as u64;
                match seg.kind {
                    SegmentKind::Plain => {
                        // Plaintext installs bypass encryption entirely.
                        memory
                            .install_ciphertext_line(addr, line)
                            .expect("aligned line");
                    }
                    _ => {
                        memory
                            .install_ciphertext_line(addr, line)
                            .expect("aligned line");
                    }
                }
            }
        }
        Ok(LoadedProgram {
            memory,
            entry: package.entry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    fn simple_package(
        vendor: &Vendor,
        target: &PublicKey,
        rng: &mut StdRng,
    ) -> (SoftwarePackage, Vec<u8>) {
        let code: Vec<u8> = (0..256u32).map(|i| (i * 7) as u8).collect();
        let pkg = vendor
            .package(
                "demo",
                &[
                    (0x1000, SegmentKind::Code, code.clone()),
                    (0x8000, SegmentKind::Data, vec![0x11; 64]),
                ],
                0x1000,
                target,
                rng,
            )
            .unwrap();
        (pkg, code)
    }

    #[test]
    fn package_ships_ciphertext_not_plaintext() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::paper_default();
        let (pkg, code) = simple_package(&vendor, cpu.public_key(), &mut rng);
        assert_ne!(&pkg.segments[0].bytes[..code.len()], &code[..]);
        assert_eq!(pkg.entry, 0x1000);
        assert_eq!(pkg.macs.len(), 2 + 1); // 256B code = 2 lines, 64B data = 1
    }

    #[test]
    fn load_on_target_recovers_the_program() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::paper_default();
        let (pkg, code) = simple_package(&vendor, cpu.public_key(), &mut rng);
        let loaded = SecureLoader::new(IntegrityMode::Mac)
            .load(&pkg, &cpu)
            .unwrap();
        let recovered = loaded.memory.read_bytes(0x1000, code.len()).unwrap();
        assert_eq!(recovered, code);
    }

    #[test]
    fn load_on_other_processor_fails() {
        let mut rng = rng();
        let cpu_a = ProcessorIdentity::generate(1, &mut rng);
        let cpu_b = ProcessorIdentity::generate(2, &mut rng);
        let vendor = Vendor::paper_default();
        let (pkg, _) = simple_package(&vendor, cpu_a.public_key(), &mut rng);
        let err = SecureLoader::default().load(&pkg, &cpu_b).unwrap_err();
        assert!(
            matches!(
                err,
                LoadError::WrongProcessor
                    | LoadError::BadKeyLength { .. }
                    | LoadError::PackageTampered { .. }
            ),
            "unexpected: {err}"
        );
    }

    #[test]
    fn tampered_package_is_rejected_at_load() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::paper_default();
        let (mut pkg, _) = simple_package(&vendor, cpu.public_key(), &mut rng);
        pkg.segments[0].bytes[5] ^= 0x01;
        let err = SecureLoader::default().load(&pkg, &cpu).unwrap_err();
        assert!(matches!(err, LoadError::PackageTampered { addr: 0x1000 }));
    }

    #[test]
    fn plain_segments_ship_and_load_in_cleartext() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::paper_default();
        let input = vec![0x42u8; 128];
        let pkg = vendor
            .package(
                "demo",
                &[(0x2000, SegmentKind::Plain, input.clone())],
                0x2000,
                cpu.public_key(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(pkg.segments[0].bytes, input);
        let loaded = SecureLoader::default().load(&pkg, &cpu).unwrap();
        assert_eq!(loaded.memory.read_bytes(0x2000, 128).unwrap(), input);
        assert_eq!(loaded.memory.raw_ciphertext(0x2000, 128), input);
    }

    #[test]
    fn data_segments_become_dynamic_after_load() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::paper_default();
        let (pkg, _) = simple_package(&vendor, cpu.public_key(), &mut rng);
        let mut loaded = SecureLoader::default().load(&pkg, &cpu).unwrap();
        // Writing the data segment bumps its sequence number.
        loaded.memory.write_bytes(0x8000, &[0x99; 8]).unwrap();
        assert_eq!(loaded.memory.sequence_number(0x8000), 1);
        assert_eq!(
            loaded.memory.read_bytes(0x8000, 8).unwrap(),
            vec![0x99; 8]
        );
    }

    #[test]
    fn unaligned_segment_is_rejected() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::paper_default();
        let err = vendor
            .package(
                "bad",
                &[(0x1001, SegmentKind::Code, vec![0; 4])],
                0x1001,
                cpu.public_key(),
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, PackageError::UnalignedSegment { base: 0x1001 });
    }

    #[test]
    fn aes_vendor_works_end_to_end() {
        let mut rng = rng();
        let cpu = ProcessorIdentity::generate(1, &mut rng);
        let vendor = Vendor::new(CipherKind::Aes128, SeedScheme::Structured, 128);
        let code = vec![0xF0u8; 200];
        let pkg = vendor
            .package(
                "aes-demo",
                &[(0x4000, SegmentKind::Code, code.clone())],
                0x4000,
                cpu.public_key(),
                &mut rng,
            )
            .unwrap();
        let loaded = SecureLoader::new(IntegrityMode::MacTree)
            .load(&pkg, &cpu)
            .unwrap();
        assert_eq!(loaded.memory.read_bytes(0x4000, 200).unwrap(), code);
    }
}
