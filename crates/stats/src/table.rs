//! Plain-text / markdown / CSV table rendering.
//!
//! The experiment harness prints each figure of the paper as a table with
//! one row per benchmark plus an `avg` row, in the same order the paper
//! uses, so measured output can be compared against the published bars
//! side by side.

use std::fmt;

/// Column alignment for [`Table`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-align the column (default; used for names).
    #[default]
    Left,
    /// Right-align the column (used for numbers).
    Right,
}

/// A simple rectangular table with a header row.
///
/// # Examples
///
/// ```
/// use padlock_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["bench".into(), "XOM".into()]);
/// t.set_align(1, Align::Right);
/// t.push_row(vec!["mcf".into(), "34.76".into()]);
/// let md = t.render_markdown();
/// assert!(md.starts_with("| bench |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    align: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header; all columns left-aligned.
    pub fn new(header: Vec<String>) -> Self {
        let n = header.len();
        Self {
            header,
            align: vec![Align::Left; n],
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn set_align(&mut self, col: usize, align: Align) {
        self.align[col] = align;
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn col_count(&self) -> usize {
        self.header.len()
    }

    /// Borrowed view of the data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        match align {
            Align::Left => format!("{cell:<width$}"),
            Align::Right => format!("{cell:>width$}"),
        }
    }

    /// Renders the table as aligned plain text.
    pub fn render_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(c, widths[i], self.align[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for a in &self.align {
            out.push_str(match a {
                Align::Left => "---|",
                Align::Right => "---:|",
            });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes, or newlines).
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["bench".into(), "slowdown".into()]);
        t.set_align(1, Align::Right);
        t.push_row(vec!["gzip".into(), "1.08".into()]);
        t.push_row(vec!["mcf".into(), "34.76".into()]);
        t
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let s = sample().render_text();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned number column: "1.08" is padded on the left.
        assert!(lines[2].ends_with("    1.08"), "got {:?}", lines[2]);
        assert!(lines[3].ends_with("34.76"));
    }

    #[test]
    fn markdown_rendering_marks_alignment() {
        let md = sample().render_markdown();
        assert!(md.contains("|---|---:|"));
        assert!(md.contains("| mcf | 34.76 |"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec!["only".into()]);
        t.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn row_and_col_counts() {
        let t = sample();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.col_count(), 2);
        assert_eq!(t.rows()[0][0], "gzip");
    }

    #[test]
    fn display_matches_render_text() {
        let t = sample();
        assert_eq!(t.to_string(), t.render_text());
    }
}
