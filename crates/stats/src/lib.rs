//! Counters, summary statistics, and table rendering for the `padlock`
//! secure-processor simulator.
//!
//! Every timing model in the workspace reports its activity through the
//! types in this crate so that the experiment harness can assemble the
//! paper's figures without each model inventing its own bookkeeping.
//!
//! # Examples
//!
//! ```
//! use padlock_stats::{Counter, Table};
//!
//! let mut hits = Counter::new("snc.hits");
//! hits.add(3);
//! assert_eq!(hits.value(), 3);
//!
//! let mut table = Table::new(vec!["bench".into(), "slowdown %".into()]);
//! table.push_row(vec!["mcf".into(), "34.76".into()]);
//! let text = table.render_text();
//! assert!(text.contains("mcf"));
//! ```

#![warn(missing_docs)]

mod counter;
mod histogram;
mod summary;
mod table;

pub use counter::{Counter, CounterSet};
pub use histogram::Histogram;
pub use summary::{arith_mean, geo_mean, percent_change, ratio, Summary};
pub use table::{Align, Table};
