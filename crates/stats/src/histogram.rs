//! Fixed-bucket histograms for latency and occupancy distributions.

use std::fmt;

/// A histogram over `u64` samples with caller-supplied bucket boundaries.
///
/// Used by the simulator to record, e.g., the distribution of observed
/// memory-read latencies under each encryption mode, which is how we sanity
/// check that the OTP fast path really produces `max(mem, crypto) + 1`.
///
/// # Examples
///
/// ```
/// use padlock_stats::Histogram;
///
/// // Buckets: [0,100), [100,151), [151,..)
/// let mut h = Histogram::new("read latency", vec![100, 151]);
/// h.record(101);
/// h.record(150);
/// h.record(250);
/// assert_eq!(h.bucket_counts(), &[0, 2, 1]);
/// assert_eq!(h.samples(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: String,
    /// Upper bounds (exclusive) of all buckets except the last, ascending.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    samples: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// `bounds` holds the exclusive upper bound of each bucket but the last;
    /// one final unbounded bucket is added automatically.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly ascending.
    pub fn new(name: impl Into<String>, bounds: Vec<u64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Self {
            name: name.into(),
            bounds,
            counts: vec![0; n],
            samples: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| sample < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.samples += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Per-bucket counts, one entry per bucket (last bucket is unbounded).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of all samples, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.samples == 0 {
            None
        } else {
            Some(self.sum as f64 / self.samples as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.samples == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.samples == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Clears all samples, keeping the bucket layout.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.samples = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} samples)", self.name, self.samples)?;
        let mut lo = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            if i < self.bounds.len() {
                writeln!(f, "  [{lo}, {}): {count}", self.bounds[i])?;
                lo = self.bounds[i];
            } else {
                writeln!(f, "  [{lo}, inf): {count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_sample_space() {
        let mut h = Histogram::new("t", vec![10, 20]);
        for s in [0, 9, 10, 19, 20, 1000] {
            h.record(s);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2]);
    }

    #[test]
    fn mean_min_max_track_samples() {
        let mut h = Histogram::new("t", vec![50]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(10);
        h.record(30);
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn reset_clears_samples() {
        let mut h = Histogram::new("t", vec![5]);
        h.record(1);
        h.reset();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.bucket_counts(), &[0, 0]);
        assert_eq!(h.mean(), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_bounds_panic() {
        let _ = Histogram::new("bad", vec![10, 10]);
    }

    #[test]
    fn display_lists_every_bucket() {
        let mut h = Histogram::new("lat", vec![100]);
        h.record(5);
        let s = h.to_string();
        assert!(s.contains("[0, 100): 1"));
        assert!(s.contains("[100, inf): 0"));
    }
}
