//! Summary math shared by the experiment harness.

/// Arithmetic mean of a slice; `None` when empty.
///
/// The paper's per-figure "Average" bars are arithmetic means over the
/// 11 benchmarks, so the harness uses this for every figure.
///
/// # Examples
///
/// ```
/// assert_eq!(padlock_stats::arith_mean(&[1.0, 3.0]), Some(2.0));
/// assert_eq!(padlock_stats::arith_mean(&[]), None);
/// ```
pub fn arith_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean of a slice of positive values; `None` when empty or when
/// any value is non-positive.
///
/// # Examples
///
/// ```
/// let g = padlock_stats::geo_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(padlock_stats::geo_mean(&[1.0, 0.0]), None);
/// ```
pub fn geo_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// `new / old` as a ratio; `None` when `old` is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(padlock_stats::ratio(150.0, 100.0), Some(1.5));
/// assert_eq!(padlock_stats::ratio(1.0, 0.0), None);
/// ```
pub fn ratio(new: f64, old: f64) -> Option<f64> {
    if old == 0.0 {
        None
    } else {
        Some(new / old)
    }
}

/// Percentage change from `old` to `new` (`+34.76` means 34.76% slower);
/// `None` when `old` is zero.
///
/// This is exactly the paper's "program slowdown \[%\]" metric with
/// `old = baseline cycles` and `new = secure-mode cycles`.
///
/// # Examples
///
/// ```
/// assert_eq!(padlock_stats::percent_change(150.0, 100.0), Some(50.0));
/// ```
pub fn percent_change(new: f64, old: f64) -> Option<f64> {
    ratio(new, old).map(|r| (r - 1.0) * 100.0)
}

/// Running summary of a stream of `f64` samples (count/mean/min/max).
///
/// # Examples
///
/// ```
/// use padlock_stats::Summary;
///
/// let mut s = Summary::new();
/// s.push(2.0);
/// s.push(4.0);
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.mean(), Some(3.0));
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_mean_of_singleton_is_value() {
        assert_eq!(arith_mean(&[5.5]), Some(5.5));
    }

    #[test]
    fn geo_mean_rejects_non_positive() {
        assert_eq!(geo_mean(&[-1.0, 2.0]), None);
        assert_eq!(geo_mean(&[]), None);
    }

    #[test]
    fn geo_mean_is_scale_invariant() {
        let a = geo_mean(&[2.0, 8.0]).unwrap();
        let b = geo_mean(&[4.0, 16.0]).unwrap();
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percent_change_matches_paper_semantics() {
        // 116.76 cycles vs 100 cycles baseline = 16.76% slowdown.
        let s = percent_change(116.76, 100.0).unwrap();
        assert!((s - 16.76).abs() < 1e-9);
    }

    #[test]
    fn percent_change_of_equal_values_is_zero() {
        assert_eq!(percent_change(7.0, 7.0), Some(0.0));
    }

    #[test]
    fn summary_empty_reports_none() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for x in [3.0, -1.0, 10.0] {
            s.push(x);
        }
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(10.0));
        assert_eq!(s.sum(), 12.0);
    }
}
