//! Named event counters.

use std::collections::BTreeMap;
use std::fmt;

/// A named, monotonically increasing event counter.
///
/// Counters are the unit of bookkeeping used by every timing model in the
/// workspace (cache hits, SNC replacements, bus transactions, ...).
///
/// # Examples
///
/// ```
/// use padlock_stats::Counter;
///
/// let mut c = Counter::new("l2.misses");
/// c.incr();
/// c.add(4);
/// assert_eq!(c.value(), 5);
/// assert_eq!(c.name(), "l2.misses");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter with the given name, starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Resets the counter to zero (used when a measured window starts after
    /// warm-up).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// A collection of counters addressed by name.
///
/// Models that own many counters (a cache, the memory bus) keep a
/// `CounterSet` so the harness can dump everything uniformly.
///
/// # Examples
///
/// ```
/// use padlock_stats::CounterSet;
///
/// let mut set = CounterSet::new("l2");
/// set.add("hits", 10);
/// set.incr("misses");
/// assert_eq!(set.get("hits"), 10);
/// assert_eq!(set.get("misses"), 1);
/// assert_eq!(set.get("absent"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    prefix: String,
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty set whose counters are reported under `prefix.`.
    pub fn new(prefix: impl Into<String>) -> Self {
        Self {
            prefix: prefix.into(),
            counters: BTreeMap::new(),
        }
    }

    /// The reporting prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Increments the named counter by one, creating it at zero first if
    /// absent.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter, creating it at zero first if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        // Hot path: the counter almost always exists after its first
        // event, and `get_mut` borrows the `&str` key directly —
        // allocating the owned `String` only on first touch.
        if let Some(v) = self.counters.get_mut(name) {
            *v += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Reads the named counter; absent counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Resets every counter in the set to zero, keeping the names.
    pub fn reset(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the set holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Merges another set into this one, summing counters with equal names.
    ///
    /// The other set's prefix is ignored; callers merge sets that describe
    /// the same component (e.g. per-phase cache stats).
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{}.{} = {}", self.prefix, name, value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_at_zero_and_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn counter_reset_zeroes_value_but_keeps_name() {
        let mut c = Counter::new("warmup");
        c.add(7);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.name(), "warmup");
    }

    #[test]
    fn counter_display_mentions_name_and_value() {
        let mut c = Counter::new("n");
        c.add(3);
        assert_eq!(c.to_string(), "n = 3");
    }

    #[test]
    fn set_creates_counters_on_demand() {
        let mut s = CounterSet::new("bus");
        assert_eq!(s.get("reads"), 0);
        s.incr("reads");
        s.add("reads", 2);
        assert_eq!(s.get("reads"), 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_reset_keeps_names_with_zero_values() {
        let mut s = CounterSet::new("l1");
        s.add("hits", 5);
        s.reset();
        assert_eq!(s.get("hits"), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn set_merge_sums_matching_names() {
        let mut a = CounterSet::new("a");
        a.add("x", 1);
        a.add("y", 2);
        let mut b = CounterSet::new("b");
        b.add("y", 10);
        b.add("z", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 12);
        assert_eq!(a.get("z"), 3);
    }

    #[test]
    fn set_iterates_in_name_order() {
        let mut s = CounterSet::new("p");
        s.add("zeta", 1);
        s.add("alpha", 2);
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn set_display_prefixes_each_line() {
        let mut s = CounterSet::new("snc");
        s.add("hits", 1);
        assert_eq!(s.to_string(), "snc.hits = 1\n");
    }
}
