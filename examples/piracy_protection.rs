//! The paper's title promise, end to end: software packaged for one
//! processor will not run on another, and tampered packages are
//! rejected.
//!
//! A vendor assembles a tiny-ISA program, encrypts it under a fresh
//! symmetric key, and wraps that key with processor A's public key.
//! Processor A runs it; processor B cannot; a bit-flipped package fails
//! its MACs at load time.
//!
//! ```text
//! cargo run --release --example piracy_protection
//! ```

use padlock_core::vendor::{ProcessorIdentity, SecureLoader, SegmentKind, Vendor};
use padlock_core::IntegrityMode;
use padlock_isa::{assemble, Vm};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // Seeded, not thread_rng (padlock-lint D2): the demo's output
    // should be reproducible run to run.
    let mut rng = StdRng::seed_from_u64(0xFAB0_0001);

    // Two processors roll off the fab line with distinct burned-in keys.
    let cpu_a = ProcessorIdentity::generate(0xA, &mut rng);
    let cpu_b = ProcessorIdentity::generate(0xB, &mut rng);

    // The vendor writes a program and targets processor A.
    let source = r#"
        addi r1, r0, 0      ; sum
        addi r2, r0, 1      ; i
        addi r3, r0, 101    ; bound
    loop:
        add  r1, r1, r2
        addi r2, r2, 1
        bne  r2, r3, loop
        out  r1             ; 5050
        halt
    "#;
    let program = assemble(source).expect("valid program");
    let vendor = Vendor::paper_default();
    let package = vendor
        .package(
            "sum-to-100",
            &[(0x1000, SegmentKind::Code, program.encode())],
            0x1000,
            cpu_a.public_key(),
            &mut rng,
        )
        .expect("package");

    println!("vendor shipped {:?}:", package.name);
    println!("  {} code bytes (ciphertext)", package.segments[0].bytes.len());
    println!("  {} per-line MACs", package.macs.len());
    println!("  wrapped key: {} bytes\n", package.wrapped_key.len());

    let loader = SecureLoader::new(IntegrityMode::Mac);

    // 1. The legitimate customer runs it on processor A.
    let loaded = loader.load(&package, &cpu_a).expect("loads on target");
    let mut vm = Vm::new(loaded.memory, loaded.entry);
    vm.run(10_000).expect("runs");
    println!("processor A runs the program: output = {:?}", vm.output());
    assert_eq!(vm.output(), &[5050]);

    // 2. A pirate copies the package to processor B.
    match loader.load(&package, &cpu_b) {
        Err(e) => println!("processor B rejects the copy:  {e}"),
        Ok(_) => unreachable!("piracy must not succeed"),
    }

    // 3. An attacker flips one ciphertext bit and retries on A.
    let mut tampered = package.clone();
    tampered.segments[0].bytes[17] ^= 0x80;
    match loader.load(&tampered, &cpu_a) {
        Err(e) => println!("processor A rejects tampering: {e}"),
        Ok(_) => unreachable!("tampering must not succeed"),
    }
}
