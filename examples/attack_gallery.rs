//! The paper's three memory attacks — spoofing, splicing, replay —
//! executed against the functional secure memory under each integrity
//! mode, printed as a detection matrix.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use padlock_core::{
    AttackOutcome, IntegrityMode, LineProtection, SecureMemory, SeedScheme,
};
use padlock_crypto::CipherKind;

fn fresh_as(integrity: IntegrityMode, key: &[u8; 16]) -> SecureMemory {
    let mut m = SecureMemory::new(
        CipherKind::Aes128,
        key,
        SeedScheme::PaperAdditive,
        128,
        integrity,
    );
    m.add_region("data", 0x1_0000, 0x2_0000, LineProtection::OtpDynamic)
        .unwrap();
    m
}

fn fresh(integrity: IntegrityMode) -> SecureMemory {
    fresh_as(integrity, &[0x5Au8; 16])
}

fn label(outcome: AttackOutcome) -> &'static str {
    match outcome {
        AttackOutcome::Detected => "DETECTED",
        AttackOutcome::GarbagePlaintext => "garbage (program traps)",
        AttackOutcome::Undetected => "UNDETECTED !!",
    }
}

fn main() {
    const A: u64 = 0x1_0000;
    const B: u64 = 0x1_0080;
    let secret = vec![0x11u8; 128];
    let other = vec![0x22u8; 128];
    let updated = vec![0x33u8; 128];

    println!("attack            none                      mac                       mac+root");
    println!("{}", "-".repeat(104));

    let run = |name: &str, attack: &dyn Fn(&mut SecureMemory) -> AttackOutcome| {
        let mut row = format!("{name:16}");
        for integrity in [IntegrityMode::None, IntegrityMode::Mac, IntegrityMode::MacTree] {
            let mut m = fresh(integrity);
            m.write_line(A, &secret).unwrap();
            m.write_line(B, &other).unwrap();
            let outcome = attack(&mut m);
            row.push_str(&format!("  {:24}", label(outcome)));
        }
        println!("{row}");
    };

    run("spoofing", &|m| {
        // Overwrite raw ciphertext with attacker-chosen bytes.
        m.attack_spoof(A, &[0xFF; 128]);
        m.probe_attack(A, &secret)
    });

    run("splicing", &|m| {
        // Move B's valid ciphertext (and MAC) over A.
        m.attack_splice(B, A);
        m.probe_attack(A, &secret)
    });

    run("replay", &|m| {
        // Capture everything, let the program update the line, restore.
        let snapshot = m.attack_snapshot(A);
        m.write_line(A, &updated).unwrap();
        m.attack_replay(&snapshot);
        m.probe_attack(A, &secret)
    });

    run("replay (data)", &|m| {
        // Replay without the spilled sequence number: the on-chip
        // counter has moved on, so the stale pad no longer matches.
        let snapshot = m.attack_snapshot(A);
        m.write_line(A, &updated).unwrap();
        m.attack_replay_data_only(&snapshot);
        m.probe_attack(A, &secret)
    });

    // The secure-server scenario: compartment A's line is captured
    // (ciphertext, MAC, and spilled sequence number — the full replay
    // that is UNDETECTED above without a hash root), the scheduler
    // context-switches to compartment B, and the attacker rolls the
    // physical region back while B owns it. B's XOM key derives B's
    // one-time-pad stream, so A's stale ciphertext decrypts to garbage
    // — per-compartment key isolation holds before any integrity mode
    // weighs in.
    let mut row = format!("{:16}", "xcomp rollback");
    for integrity in [IntegrityMode::None, IntegrityMode::Mac, IntegrityMode::MacTree] {
        let mut comp_a = fresh_as(integrity, &[0x5Au8; 16]);
        comp_a.write_line(A, &secret).unwrap();
        let stale = comp_a.attack_snapshot(A);
        // After the switch the same physical region is mapped under
        // compartment B's key; B has since written its own data there.
        let mut comp_b = fresh_as(integrity, &[0xC3u8; 16]);
        comp_b.write_line(A, &updated).unwrap();
        comp_b.attack_replay(&stale);
        row.push_str(&format!("  {:24}", label(comp_b.probe_attack(A, &secret))));
    }
    println!("{row}");

    println!(
        "\nReading the matrix: plain MACs stop spoofing and splicing (the\n\
         tag binds ciphertext to its address) but full replay — data,\n\
         MAC, and spilled sequence number together — needs the on-chip\n\
         root hash, matching the paper's deferral of replay defence to\n\
         Gassend et al.'s hash trees. The cross-compartment rollback\n\
         row is the exception that needs no tree: replaying compartment\n\
         A's stale line after a context switch to compartment B fails\n\
         even without integrity, because each compartment's pads are\n\
         derived from its own vendor key (§2.3) — A's ciphertext under\n\
         B's key stream is noise."
    );
}
