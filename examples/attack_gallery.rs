//! The paper's three memory attacks — spoofing, splicing, replay —
//! executed against the functional secure memory under each integrity
//! mode, printed as a detection matrix.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use padlock_core::{
    AttackOutcome, IntegrityMode, LineProtection, SecureMemory, SeedScheme,
};
use padlock_crypto::CipherKind;

fn fresh(integrity: IntegrityMode) -> SecureMemory {
    let mut m = SecureMemory::new(
        CipherKind::Aes128,
        &[0x5Au8; 16],
        SeedScheme::PaperAdditive,
        128,
        integrity,
    );
    m.add_region("data", 0x1_0000, 0x2_0000, LineProtection::OtpDynamic)
        .unwrap();
    m
}

fn label(outcome: AttackOutcome) -> &'static str {
    match outcome {
        AttackOutcome::Detected => "DETECTED",
        AttackOutcome::GarbagePlaintext => "garbage (program traps)",
        AttackOutcome::Undetected => "UNDETECTED !!",
    }
}

fn main() {
    const A: u64 = 0x1_0000;
    const B: u64 = 0x1_0080;
    let secret = vec![0x11u8; 128];
    let other = vec![0x22u8; 128];
    let updated = vec![0x33u8; 128];

    println!("attack            none                      mac                       mac+root");
    println!("{}", "-".repeat(104));

    let run = |name: &str, attack: &dyn Fn(&mut SecureMemory) -> AttackOutcome| {
        let mut row = format!("{name:16}");
        for integrity in [IntegrityMode::None, IntegrityMode::Mac, IntegrityMode::MacTree] {
            let mut m = fresh(integrity);
            m.write_line(A, &secret).unwrap();
            m.write_line(B, &other).unwrap();
            let outcome = attack(&mut m);
            row.push_str(&format!("  {:24}", label(outcome)));
        }
        println!("{row}");
    };

    run("spoofing", &|m| {
        // Overwrite raw ciphertext with attacker-chosen bytes.
        m.attack_spoof(A, &[0xFF; 128]);
        m.probe_attack(A, &secret)
    });

    run("splicing", &|m| {
        // Move B's valid ciphertext (and MAC) over A.
        m.attack_splice(B, A);
        m.probe_attack(A, &secret)
    });

    run("replay", &|m| {
        // Capture everything, let the program update the line, restore.
        let snapshot = m.attack_snapshot(A);
        m.write_line(A, &updated).unwrap();
        m.attack_replay(&snapshot);
        m.probe_attack(A, &secret)
    });

    run("replay (data)", &|m| {
        // Replay without the spilled sequence number: the on-chip
        // counter has moved on, so the stale pad no longer matches.
        let snapshot = m.attack_snapshot(A);
        m.write_line(A, &updated).unwrap();
        m.attack_replay_data_only(&snapshot);
        m.probe_attack(A, &secret)
    });

    println!(
        "\nReading the matrix: plain MACs stop spoofing and splicing (the\n\
         tag binds ciphertext to its address) but full replay — data,\n\
         MAC, and spilled sequence number together — needs the on-chip\n\
         root hash, matching the paper's deferral of replay defence to\n\
         Gassend et al.'s hash trees."
    );
}
