//! The full stack in one program: vendor packaging, secure loading,
//! encrypted execution, a malicious-OS interrupt, and a bus probe.
//!
//! ```text
//! cargo run --release --example secure_vm
//! ```

use padlock_core::compartment::{CompartmentManager, XomId};
use padlock_core::vendor::{ProcessorIdentity, SecureLoader, SegmentKind, Vendor};
use padlock_core::IntegrityMode;
use padlock_isa::{assemble, Vm};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // Seeded, not thread_rng (padlock-lint D2): the demo's output
    // should be reproducible run to run.
    let mut rng = StdRng::seed_from_u64(0x5EC0_0001);
    let cpu = ProcessorIdentity::generate(0xCAFE, &mut rng);

    // A program that builds a table of squares in writable data memory,
    // then reads it back — exercising encrypted stores with rotating
    // sequence numbers, not just code fetch.
    let source = r#"
        lui  r4, 2          ; data base = 0x20000
        addi r2, r0, 1      ; i = 1
        addi r3, r0, 11
    fill:
        mul  r5, r2, r2
        sw   r5, (r4)
        addi r4, r4, 4
        addi r2, r2, 1
        bne  r2, r3, fill
        lui  r4, 2
        lw   r6, 36(r4)     ; squares[9] = 100
        out  r6
        halt
    "#;
    let program = assemble(source).expect("assembles");
    let package = Vendor::paper_default()
        .package(
            "squares",
            &[
                (0x1000, SegmentKind::Code, program.encode()),
                (0x2_0000, SegmentKind::Data, vec![0u8; 128]),
            ],
            0x1000,
            cpu.public_key(),
            &mut rng,
        )
        .expect("packages");

    let loaded = SecureLoader::new(IntegrityMode::Mac)
        .load(&package, &cpu)
        .expect("loads");
    let mut vm = Vm::new(loaded.memory, loaded.entry);
    vm.run(10_000).expect("runs");
    println!("program output: {:?} (10^2 as expected)", vm.output());

    // What a logic analyser on the memory bus would capture:
    let ct = vm.memory().raw_ciphertext(0x2_0000, 16);
    println!("bus view of squares[0..4]: {ct:02x?}");
    println!("sequence number of the data line: {}", vm.memory().sequence_number(0x2_0000));

    // A "malicious OS" interrupt: registers are encrypted under a
    // mutating counter before the OS sees anything (paper §2.3).
    let mut cm = CompartmentManager::new();
    cm.register_compartment(XomId(1), [7u8; 16]);
    cm.enter(XomId(1)).unwrap();
    cm.write_reg(5, 0xDEAD_BEEF);
    let frame = cm.interrupt().expect("interrupt");
    println!(
        "\ninterrupt frame handed to the OS: owner {}, counter {}, {} ciphertext bytes",
        frame.owner(),
        frame.counter(),
        32 * 8,
    );
    assert!(cm.read_reg(5).unwrap() == 0, "registers scrubbed for the OS");
    cm.resume(&frame).expect("resume");
    assert_eq!(cm.read_reg(5).unwrap(), 0xDEAD_BEEF);
    println!("resume restored r5 = {:#x}; a replayed stale frame would be rejected", 0xDEAD_BEEFu32);
}
