//! Quickstart: measure what memory encryption costs.
//!
//! Builds the paper's three machines — insecure baseline, XOM
//! (decrypt-in-series), and the one-time-pad design with a sequence
//! number cache — and runs the same synthetic `mcf`-like workload on
//! each.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use padlock_core::{Machine, MachineConfig, SecurityMode};
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn main() {
    let warmup = 200_000;
    let measure = 600_000;

    println!("padlock quickstart: one workload, three machines\n");
    println!("machine             cycles        IPC   slowdown");
    println!("--------------------------------------------------");

    let mut baseline_cycles = None;
    for mode in [
        SecurityMode::Insecure,
        SecurityMode::Xom,
        SecurityMode::otp_lru_64k(),
    ] {
        let mut machine = Machine::new(MachineConfig::paper(mode));
        let mut workload = SpecWorkload::new(benchmark_profile("mcf"));
        let m = machine.run(&mut workload, warmup, measure);
        let base = *baseline_cycles.get_or_insert(m.stats.cycles);
        let slowdown = (m.stats.cycles as f64 / base as f64 - 1.0) * 100.0;
        println!(
            "{:18} {:>9}  {:>9.3}  {:>7.2}%",
            m.label,
            m.stats.cycles,
            m.stats.ipc(),
            slowdown
        );
    }

    println!(
        "\nXOM pays the crypto unit's latency on every L2 miss; the\n\
         one-time-pad machine overlaps pad generation with the DRAM\n\
         access (max(100, 50) + 1 instead of 100 + 50), which is the\n\
         paper's headline result."
    );
}
