//! Sweep the Sequence Number Cache design space on one workload:
//! capacity (Fig. 6), organisation (Fig. 7), and management policy
//! (Fig. 5), printing the slowdown each design costs over the insecure
//! baseline.
//!
//! ```text
//! cargo run --release --example snc_tuning
//! ```

use padlock_core::{
    Machine, MachineConfig, SecurityMode, SncConfig, SncOrganization, SncPolicy,
};
use padlock_stats::{Align, Table};
use padlock_workloads::{benchmark_profile, SpecWorkload};

const WARMUP: u64 = 200_000;
const MEASURE: u64 = 600_000;
const BENCH: &str = "mcf";

fn cycles(mode: SecurityMode) -> u64 {
    let mut machine = Machine::new(MachineConfig::paper(mode));
    let mut workload = SpecWorkload::new(benchmark_profile(BENCH));
    // Model a long-running process (the paper fast-forwards 10B
    // instructions): an ancient heap plus any actively rewritten region.
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    machine
        .core_mut()
        .hierarchy_mut()
        .backend_mut()
        .pre_age(ancient, active);
    machine.run(&mut workload, WARMUP, MEASURE).stats.cycles
}

fn main() {
    println!("SNC design sweep on the {BENCH}-like workload\n");
    let base = cycles(SecurityMode::Insecure);
    let xom = cycles(SecurityMode::Xom);

    let mut table = Table::new(vec![
        "design".into(),
        "capacity".into(),
        "organisation".into(),
        "policy".into(),
        "slowdown %".into(),
    ]);
    table.set_align(4, Align::Right);
    let pct = |c: u64| format!("{:.2}", (c as f64 / base as f64 - 1.0) * 100.0);

    table.push_row(vec![
        "XOM (no SNC)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        pct(xom),
    ]);

    let designs = [
        (32, SncOrganization::FullyAssociative, SncPolicy::Lru),
        (64, SncOrganization::FullyAssociative, SncPolicy::Lru),
        (128, SncOrganization::FullyAssociative, SncPolicy::Lru),
        (64, SncOrganization::SetAssociative(32), SncPolicy::Lru),
        (64, SncOrganization::FullyAssociative, SncPolicy::NoReplacement),
    ];
    for (kb, org, policy) in designs {
        let snc = SncConfig::paper_default()
            .with_capacity(kb * 1024)
            .with_organization(org)
            .with_policy(policy);
        let c = cycles(SecurityMode::Otp { snc });
        table.push_row(vec![
            "OTP + SNC".into(),
            format!("{kb}KB"),
            org.to_string(),
            policy.to_string(),
            pct(c),
        ]);
    }

    println!("{table}");
    println!(
        "The paper's recommendation falls out of the sweep: a 64KB LRU\n\
         SNC recovers nearly all of XOM's loss, 128KB buys little more,\n\
         and 32-way set associativity is almost as good as fully\n\
         associative at lower implementation cost."
    );
}
