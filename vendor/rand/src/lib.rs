//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this drop-in replacement covering exactly what the padlock
//! crates call: [`thread_rng`], the [`Rng`]/[`RngCore`] traits with
//! `fill_bytes`, and [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`]. The generator is xoshiro256**, which
//! is more than adequate for simulation inputs and the toy RSA used
//! here; it is NOT a cryptographically secure RNG (neither claim is
//! load-bearing for the paper reproduction).

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension trait; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256** — the shim's stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    /// Lazily seeded per-call generator returned by [`super::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(StdRng);

    impl ThreadRng {
        pub(crate) fn from_entropy() -> Self {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED_5EED);
            let stack_probe = &nanos as *const u64 as u64;
            ThreadRng(StdRng::seed_from_u64(nanos ^ stack_probe.rotate_left(32)))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a freshly entropy-seeded generator, mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        fn fill(rng: &mut impl Rng, dest: &mut [u8]) {
            rng.fill_bytes(dest);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        fill(&mut rng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_is_usable() {
        let mut buf = [0u8; 8];
        super::thread_rng().fill_bytes(&mut buf);
    }
}
