//! Offline shim for the subset of the `criterion` 0.5 API this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this drop-in replacement. It supports benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `throughput`,
//! [`BenchmarkId`], and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a straightforward calibrated-batch median
//! (no outlier analysis, HTML reports, or baselines); results print as
//! `group/id  time: [median]` lines. When cargo runs a bench target in
//! test mode (`--test` on the command line), every benchmark executes
//! exactly one iteration so `cargo test` stays fast.
//!
//! # Baseline capture
//!
//! When the `CRITERION_BASELINE` environment variable names a file,
//! every measured benchmark appends one JSON object per line
//! (`{"id": "group/name", "median_ns": …, "samples": …}`) to it —
//! JSON-lines, so the many bench processes `cargo bench` spawns can
//! share the file without coordination. Records only ever append:
//! delete the file before a capture when refreshing a baseline,
//! otherwise stale records for the same ids pile up. The repo checks
//! in the reference capture at `crates/bench/baseline.json`; diff a
//! fresh run against it to spot perf regressions.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, optionally parameterised.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id built from a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id built from the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Declares how many bytes or elements one iteration processes, so the
/// harness can report derived throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled in by `iter`.
    measured_ns: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement with the configured sample count.
    Measure { sample_size: usize },
    /// One iteration only (cargo test smoke mode).
    Test,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter on the bencher.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.measured_ns = 0.0;
            }
            Mode::Measure { sample_size } => {
                // Calibrate: find an iteration count that takes ~2ms.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                        break;
                    }
                    iters = iters.saturating_mul(2);
                }
                let mut samples: Vec<f64> = (0..sample_size.max(1))
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..iters {
                            black_box(routine());
                        }
                        start.elapsed().as_nanos() as f64 / iters as f64
                    })
                    .collect();
                samples.sort_by(|a, b| a.total_cmp(b));
                self.measured_ns = samples[samples.len() / 2];
            }
        }
    }

    /// Times `routine` over inputs built by `setup`, excluding the
    /// setup from the measurement — the `criterion` 0.5 `iter_batched`
    /// shape. The shim runs one setup + routine pair per sample (the
    /// `BatchSize` hint is accepted for API compatibility and ignored),
    /// so use it when each iteration is far longer than the timer
    /// granularity — e.g. whole-machine simulation points with
    /// expensive construction/pre-aging.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
                self.measured_ns = 0.0;
            }
            Mode::Measure { sample_size } => {
                let mut samples: Vec<f64> = (0..sample_size.max(1))
                    .map(|_| {
                        let input = setup();
                        let start = Instant::now();
                        black_box(routine(input));
                        start.elapsed().as_nanos() as f64
                    })
                    .collect();
                samples.sort_by(|a, b| a.total_cmp(b));
                self.measured_ns = samples[samples.len() / 2];
            }
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; accepted for
/// `criterion` 0.5 API compatibility, ignored by the shim's
/// one-batch-per-sample measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Few iterations per batch (large per-iteration state).
    SmallInput,
    /// Many iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Top-level benchmark driver; one per `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test`
        // when running them under `cargo test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run(id, f);
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark closure under this group's settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self {
        let id = id.into();
        self.run(id, f);
        self
    }

    /// Runs one parameterised benchmark, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group. (Reporting happens per-benchmark; this exists for
    /// API compatibility.)
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut bencher = Bencher {
            mode: if self.criterion.test_mode {
                Mode::Test
            } else {
                Mode::Measure { sample_size: self.sample_size }
            },
            measured_ns: f64::NAN,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        if self.criterion.test_mode {
            println!("test {label} ... ok (1 iteration)");
        } else if bencher.measured_ns.is_nan() {
            println!("{label:<44} (no measurement: closure never called iter)");
        } else {
            record_baseline(&label, bencher.measured_ns, self.sample_size);
            let time = format_ns(bencher.measured_ns);
            match self.throughput {
                Some(Throughput::Bytes(bytes)) if bencher.measured_ns > 0.0 => {
                    let gib_s = bytes as f64 / bencher.measured_ns; // bytes/ns == GB/s
                    println!("{label:<44} time: [{time}]  thrpt: [{gib_s:.3} GB/s]");
                }
                Some(Throughput::Elements(n)) if bencher.measured_ns > 0.0 => {
                    let melem_s = n as f64 * 1e3 / bencher.measured_ns;
                    println!("{label:<44} time: [{time}]  thrpt: [{melem_s:.3} Melem/s]");
                }
                _ => println!("{label:<44} time: [{time}]"),
            }
        }
    }
}

/// Appends one JSON-lines record to the `CRITERION_BASELINE` file, if
/// the variable is set. Failures warn on stderr rather than failing
/// the bench run.
fn record_baseline(label: &str, median_ns: f64, samples: usize) {
    let Ok(path) = std::env::var("CRITERION_BASELINE") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let entry = format!(
        "{{\"id\":\"{}\",\"median_ns\":{:.1},\"samples\":{}}}\n",
        label.replace('\\', "\\\\").replace('"', "\\\""),
        median_ns,
        samples
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(entry.as_bytes()));
    if let Err(err) = result {
        eprintln!("criterion shim: cannot append baseline to {path}: {err}");
    }
}

/// Appends a `__walltime__/<bin>` record covering the bench binary's
/// whole run to the `CRITERION_BASELINE` file, if the variable is set.
/// `criterion_main!` calls this after the last group finishes, so a
/// captured baseline carries the total capture wall-clock alongside the
/// per-benchmark medians (`baseline_diff` sums and prints these instead
/// of comparing them as benchmarks).
pub fn record_walltime(elapsed: std::time::Duration) {
    let bin = std::env::args()
        .next()
        .map(|arg0| {
            std::path::Path::new(&arg0)
                .file_stem()
                .map_or_else(|| arg0.clone(), |s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    let label = format!("__walltime__/{}", strip_metadata_hash(&bin));
    record_baseline(&label, elapsed.as_secs_f64() * 1e9, 1);
}

/// Cargo names bench binaries `<target>-<16 hex metadata hash>`; strip
/// the hash so walltime ids stay stable across builds and hosts.
fn strip_metadata_hash(bin: &str) -> &str {
    match bin.rsplit_once('-') {
        Some((stem, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            stem
        }
        _ => bin,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a single runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let started = std::time::Instant::now();
            $( $group(); )+
            $crate::record_walltime(started.elapsed());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests that run measure-mode groups: they read the
    /// process-global `CRITERION_BASELINE` variable, which
    /// `baseline_env_var_appends_json_lines` mutates.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn group_measures_and_reports() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion { test_mode: false };
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(2);
            g.throughput(Throughput::Bytes(8));
            g.bench_function("spin", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    black_box(n * 2)
                })
            });
            g.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn baseline_env_var_appends_json_lines() {
        let _env = ENV_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_baseline_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_BASELINE", &path);
        let mut c = Criterion { test_mode: false };
        {
            let mut g = c.benchmark_group("baseline_check");
            g.sample_size(2);
            g.bench_function("spin", |b| b.iter(|| black_box(2 + 2)));
            g.finish();
        }
        std::env::remove_var("CRITERION_BASELINE");
        let contents = std::fs::read_to_string(&path).expect("baseline file written");
        let _ = std::fs::remove_file(&path);
        let line = contents
            .lines()
            .find(|l| l.contains("baseline_check/spin"))
            .expect("record for our benchmark");
        assert!(line.starts_with("{\"id\":\"baseline_check/spin\""), "{line}");
        assert!(line.contains("\"median_ns\":"), "{line}");
        assert!(line.trim_end().ends_with("\"samples\":2}"), "{line}");
    }

    #[test]
    fn metadata_hash_is_stripped_from_bin_names() {
        assert_eq!(strip_metadata_hash("channel_sweep-6d4e9f0a1b2c3d4e"), "channel_sweep");
        // Too short, non-hex, or missing: left alone.
        assert_eq!(strip_metadata_hash("channel_sweep-abc"), "channel_sweep-abc");
        assert_eq!(strip_metadata_hash("sweep-ghijklmnopqrstuv"), "sweep-ghijklmnopqrstuv");
        assert_eq!(strip_metadata_hash("plain"), "plain");
    }

    #[test]
    fn walltime_record_lands_in_the_baseline() {
        let _env = ENV_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_walltime_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_BASELINE", &path);
        record_walltime(std::time::Duration::from_millis(5));
        std::env::remove_var("CRITERION_BASELINE");
        let contents = std::fs::read_to_string(&path).expect("baseline file written");
        let _ = std::fs::remove_file(&path);
        let line = contents.lines().next().expect("one walltime record");
        assert!(line.starts_with("{\"id\":\"__walltime__/"), "{line}");
        assert!(line.contains("\"median_ns\":5000000.0"), "{line}");
        assert!(line.trim_end().ends_with("\"samples\":1}"), "{line}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).name, "f/4");
        assert_eq!(BenchmarkId::from_parameter(true).name, "true");
        assert_eq!(BenchmarkId::from("x").name, "x");
    }
}
