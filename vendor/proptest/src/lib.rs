//! Offline shim for the subset of the `proptest` 1.x API this
//! workspace's property tests use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this drop-in replacement. It supports the `proptest!` macro
//! (with `#![proptest_config(ProptestConfig::with_cases(n))]`), integer
//! and float range strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `.prop_map`, tuple strategies, `collection::vec`, `sample::select`,
//! `sample::Index`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case panics with the formatted
//!   assertion message; rerun under a debugger to inspect.
//! * **Deterministic.** Each test's RNG is seeded from the test's name,
//!   so runs are reproducible across machines and CI.
//! * Default case count is 64 (real proptest: 256) to keep the
//!   simulation-heavy suites fast; every heavy test here sets its own
//!   count via `with_cases` anyway.

/// Test-runner configuration and case-level error plumbing.
pub mod test_runner {
    /// Controls how many cases a `proptest!` test executes.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running exactly `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`] trait and the combinators the workspace uses.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy for heterogeneous collections
        /// (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe view of [`Strategy`], used for boxing.
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among several strategies with a common value type
    /// (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u128) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            // Span arithmetic runs in i128 so negative-start signed
            // ranges don't wrap (every $t's full span fits in i128).
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    (*self.start() as i128 + rng.below(span as u128) as i128) as $t
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as i128) - (self.start as i128) + 1;
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for collection strategies: an exact size or
    /// a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { start: exact, end: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange { start: range.start, end: range.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies (`sample::select`, `sample::Index`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length-agnostic index: scale into any collection with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index uniformly into `[0, len)`; `len` must be
        /// nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Strategy choosing uniformly from a fixed list, mirroring
    /// `proptest::sample::select`.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.items.len() as u128) as usize;
            self.items[pick].clone()
        }
    }

    /// Builds a [`Select`]; `items` must be non-empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs at least one item");
        Select { items }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirrors the `prop` module alias from proptest's prelude.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the `#[test]` attribute is written by the caller,
/// as with real proptest) running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut seed: u64 = 0xC0FF_EE00_5EED_0001;
            for byte in stringify!($name).bytes() {
                seed = seed.rotate_left(8) ^ u64::from(byte);
            }
            let mut rng = $crate::test_runner::TestRng::new(seed);
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(100),
                    "proptest shim: prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!("proptest case failed: {}\n  test: {}, case {} (deterministic seed)",
                            message, stringify!($name), accepted);
                    }
                }
            }
        }
    )*};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the harness can report it with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..256 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_with_negative_starts_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(5);
        let mut saw_negative = false;
        for _ in 0..256 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
            let w = (i8::MIN..=i8::MAX).generate(&mut rng);
            let _ = w;
            let x = (-3i64..).generate(&mut rng);
            assert!(x >= -3);
        }
        assert!(saw_negative);
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::new(2);
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn vec_and_select_sizes() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..64 {
            let v = crate::collection::vec(0u8.., 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(any::<u8>(), 7).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let s = crate::sample::select(vec![4u64, 8, 15]).generate(&mut rng);
            assert!([4u64, 8, 15].contains(&s));
        }
    }

    #[test]
    fn index_scales_into_any_len() {
        let mut rng = crate::test_runner::TestRng::new(4);
        for _ in 0..256 {
            let idx = any::<prop::sample::Index>().generate(&mut rng);
            assert!(idx.index(13) < 13);
            assert!(idx.index(1) == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 1u64..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a + b < 200, "sum {} out of range", a + b);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
