//! `padlock` — a reproduction of *Fast Secure Processor for Inhibiting
//! Software Piracy and Tampering* (Yang, Zhang, Gao; MICRO-36, 2003).
//!
//! The paper's contribution is one-time-pad (counter-mode) memory
//! encryption with an on-chip Sequence Number Cache, which moves the
//! decryption of off-chip memory traffic *off* the L2-miss critical path:
//! `max(mem, crypto) + 1` cycles instead of XOM's `mem + crypto`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * `core` — the secure memory controller (baseline /
//!   XOM / OTP+SNC), the SNC, the functional encrypted memory, vendor
//!   packaging, compartments;
//! * `cpu` — the 4-issue out-of-order timing model and
//!   cache hierarchy;
//! * `crypto` — DES, 3DES, AES-128, SHA-256, CBC-MAC,
//!   toy RSA, the one-time-pad engine;
//! * `workloads` — the 11 calibrated SPEC2000-like
//!   generators;
//! * `isa` — a tiny RISC ISA + VM executing through the
//!   secure memory;
//! * `cache`, `mem`, `stats`, `area` — substrates.
//!
//! # Examples
//!
//! ```
//! use padlock::core::{Machine, MachineConfig, SecurityMode};
//! use padlock::cpu::StrideWorkload;
//!
//! let mut machine = Machine::new(MachineConfig::paper(SecurityMode::Xom));
//! let m = machine.run(&mut StrideWorkload::new(1 << 20, 128, 0.2), 1_000, 3_000);
//! assert_eq!(m.label, "XOM");
//! ```
//!
//! See `examples/` for runnable end-to-end demonstrations and
//! `crates/bench` for the harness that regenerates every figure of the
//! paper.

#![warn(missing_docs)]

pub use padlock_area as area;
pub use padlock_cache as cache;
pub use padlock_core as core;
pub use padlock_cpu as cpu;
pub use padlock_crypto as crypto;
pub use padlock_isa as isa;
pub use padlock_mem as mem;
pub use padlock_stats as stats;
pub use padlock_workloads as workloads;
